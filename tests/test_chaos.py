"""Parallel chaos harness (marker: ``chaos``).

Every fault class the supervised engine claims to contain is exercised
end to end: SIGKILLed workers, crash-looping poison units, pure hangs
caught by the per-unit deadline, heartbeat loss (SIGSTOP), shared-memory
corruption, result-cache corruption, and total pool collapse into
degraded-serial mode.  The contract under test is the supervision
acceptance criterion — a chaos run terminates within its deadline and
yields either results identical to a clean serial run or a structured
failure report (no hangs, no silent wrong answers), and ``--resume``
completes the remainder.

Chaos strikes fire only inside pool workers, so the same wrapped units
double as their own serial baseline.
"""

import json
import os
import signal
import time

import pytest

from repro.errors import ParallelError, WorkerCrashError
from repro.parallel.pool import (
    WorkerPool,
    fork_available,
    shared_task_pool,
    shutdown_shared_pool,
)
from repro.parallel.supervisor import SupervisorConfig
from repro.robustness import faultinject
from repro.robustness.executor import UnitSpec, run_units
from repro.robustness.journal import RunJournal
from repro.robustness.retry import RetryPolicy
from repro.sim.config import SingleSizeScheme, TLBConfig
from repro.sim.driver import run_single_size
from repro.trace.trace_io import attach_shared_trace, share_trace
from repro.workloads.registry import generate_trace

pytestmark = [
    pytest.mark.chaos,
    pytest.mark.skipif(not fork_available(), reason="needs fork"),
]

NO_RETRY = RetryPolicy(max_attempts=1, base_delay=0.0)


def _units(plan=None, count=4):
    """Deterministic units (``u0``..): value * 11, optionally chaotic."""

    def make(index):
        task = lambda value=index: value * 11  # noqa: E731
        if plan is not None:
            task = plan.wrap(f"u{index}", task)
        return UnitSpec(name=f"u{index}", run=task)

    return [make(index) for index in range(count)]


def _journal_units(path):
    """Unit names in on-disk record order (not the replayed dict)."""
    names = []
    with open(path, encoding="utf-8") as stream:
        for line in stream:
            record = json.loads(line)
            if record.get("type") == "unit":
                names.append(record["unit"])
    return names


def _exit_hard():
    os._exit(7)


def _double(value):
    return value * 2


class TestKillRecovery:
    def test_killed_unit_requeued_and_matches_serial(self, tmp_path):
        plan = faultinject.ChaosPlan(
            tmp_path / "tokens", victims={"u1": ("kill", 1)}
        )
        serial_journal = RunJournal(tmp_path / "s.jsonl", fingerprint={"s": 1})
        serial = run_units(_units(plan), journal=serial_journal, jobs=None)
        assert serial.ok
        assert plan.strikes_delivered() == 0  # strikes no-op in the parent

        chaos_journal = RunJournal(tmp_path / "c.jsonl", fingerprint={"s": 1})
        chaos = run_units(_units(plan), journal=chaos_journal, jobs=2)
        assert chaos.ok and chaos.exit_code == 0
        assert plan.strikes_delivered() == 1
        assert [
            (o.name, o.status, o.result) for o in chaos.outcomes
        ] == [(o.name, o.status, o.result) for o in serial.outcomes]
        # Journal records land in the same spec order as the serial run.
        assert _journal_units(tmp_path / "c.jsonl") == _journal_units(
            tmp_path / "s.jsonl"
        )
        sup = chaos.supervision
        assert sup["crashes"] == 1
        assert sup["requeues"] == 1
        assert sup["respawns"] >= 1
        assert sup["poisoned"] == []
        assert sup["window_decreases"] >= 1  # AIMD shed load on the kill


class TestPoisonQuarantine:
    def test_crash_loop_quarantined_with_structured_record(self, tmp_path):
        plan = faultinject.ChaosPlan(
            tmp_path / "tokens", victims={"u1": ("kill", 8)}
        )
        journal = RunJournal(tmp_path / "q.jsonl", fingerprint={"s": 1})
        report = run_units(_units(plan), journal=journal, jobs=2)
        assert report.exit_code == 1
        statuses = {o.name: o.status for o in report.outcomes}
        assert statuses == {
            "u0": "ok", "u1": "failed", "u2": "ok", "u3": "ok"
        }
        poisoned = next(o for o in report.outcomes if o.name == "u1")
        assert "PoisonUnitError" in poisoned.error
        assert "quarantined after killing 3 workers" in poisoned.error
        # The underlying crash still shows through the quarantine text.
        assert "WorkerCrashError" in poisoned.error
        assert report.supervision["poisoned"] == ["u1"]
        # Exactly max_worker_kills strikes were spent, not the full 8.
        assert plan.strikes_delivered() == 3

        record = journal.get("u1")
        assert not record.succeeded
        assert record.detail["poison"] is True
        assert record.detail["kills"] == 3
        assert record.detail["reasons"] == ["crash", "crash", "crash"]
        assert "WorkerCrashError" in record.detail["last_error"]

    def test_poison_inside_batch_quarantined_alone(self, tmp_path):
        # With batched dispatch a crashing unit takes down a worker that
        # holds its batch siblings too.  The siblings were never *run*,
        # so they are requeued without being charged a kill — only the
        # actual poison unit is quarantined.
        plan = faultinject.ChaosPlan(
            tmp_path / "tokens", victims={"u1": ("kill", 8)}
        )
        journal = RunJournal(tmp_path / "b.jsonl", fingerprint={"s": 1})
        report = run_units(
            _units(plan, count=8), journal=journal, jobs=2, batch_size=4
        )
        assert report.exit_code == 1
        statuses = {o.name: o.status for o in report.outcomes}
        assert statuses == {
            f"u{index}": ("failed" if index == 1 else "ok")
            for index in range(8)
        }
        assert report.supervision["poisoned"] == ["u1"]
        assert plan.strikes_delivered() == 3
        # At least one batch sibling rode along on a killed worker and
        # came back requeued-not-killed; every survivor finished clean.
        assert report.supervision["sibling_requeues"] >= 1
        for index in (0, 2, 3, 4, 5, 6, 7):
            record = journal.get(f"u{index}")
            assert record.succeeded
            assert record.payload is None or "poison" not in (
                record.detail or {}
            )

    def test_resume_completes_the_remainder(self, tmp_path):
        plan = faultinject.ChaosPlan(
            tmp_path / "tokens", victims={"u2": ("kill", 8)}
        )
        path = tmp_path / "resume.jsonl"
        journal = RunJournal(path, fingerprint={"s": 1})
        first = run_units(_units(plan), journal=journal, jobs=2)
        assert first.exit_code == 1

        # The poison fixed (plain units), the journal keeps the rest.
        journal = RunJournal(path, fingerprint={"s": 1})
        second = run_units(_units(), journal=journal, resume=True, jobs=2)
        assert second.exit_code == 0
        statuses = [(o.name, o.status) for o in second.outcomes]
        assert statuses == [
            ("u0", "skipped"),
            ("u1", "skipped"),
            ("u2", "ok"),
            ("u3", "skipped"),
        ]
        repaired = next(o for o in second.outcomes if o.name == "u2")
        assert repaired.result == 22


class TestHangContainment:
    def test_deadline_hang_killed_and_requeued(self, tmp_path):
        plan = faultinject.ChaosPlan(
            tmp_path / "tokens",
            victims={"u2": ("hang", 1)},
            hang_seconds=30.0,
        )
        started = time.monotonic()
        report = run_units(
            _units(plan),
            jobs=2,
            supervision=SupervisorConfig(unit_deadline=1.0),
        )
        elapsed = time.monotonic() - started
        assert report.ok and report.exit_code == 0
        assert elapsed < 15.0  # contained, nowhere near the 30s hang
        assert [o.result for o in report.outcomes] == [0, 11, 22, 33]
        sup = report.supervision
        assert sup["hangs"] == 1
        assert sup["crashes"] == 0
        assert sup["requeues"] == 1

    def test_sigstopped_worker_reported_as_heartbeat_hang(self):
        pool = WorkerPool(
            [lambda: time.sleep(30.0)],
            1,
            heartbeat_interval=0.1,
            heartbeat_timeout=0.8,
            kill_grace=0.2,
        )
        try:
            pool.submit(0, 0)
            # SIGSTOP freezes the worker and its heartbeat thread: the
            # beat stream stops even though the process still exists.
            os.kill(pool._workers[0].process.pid, signal.SIGSTOP)
            hang = None
            deadline = time.monotonic() + 15.0
            while hang is None and time.monotonic() < deadline:
                for message in pool.poll(0.05):
                    if message.kind == "hang":
                        hang = message
            assert hang is not None
            assert hang.payload["reason"] == "heartbeat"
            assert hang.task_id == 0
            # SIGKILL works on stopped processes: no leak, no zombie.
            assert not pool._workers[0].process.is_alive()
        finally:
            pool.terminate()


class TestSharedMemoryCorruption:
    def test_corrupt_segment_is_a_structured_failure(self):
        trace = generate_trace("espresso", 4000, seed=23)
        handle = share_trace(trace)
        faultinject.corrupt_shared_memory(handle.shm_name, seed=2)
        units = [
            UnitSpec(
                name="attach",
                run=lambda: int(attach_shared_trace(handle).addresses.sum()),
            ),
            UnitSpec(name="plain", run=lambda: 7),
        ]
        report = run_units(units, jobs=2, retry_policy=NO_RETRY)
        assert report.exit_code == 1
        statuses = {o.name: o.status for o in report.outcomes}
        assert statuses == {"attach": "failed", "plain": "ok"}
        failed = next(o for o in report.outcomes if o.name == "attach")
        # A CRC mismatch, reported with both checksums — never garbage
        # simulated silently.
        assert "TraceIntegrityError" in failed.error
        assert "CRC" in failed.error


class TestCacheCorruption:
    SCHEME = SingleSizeScheme(4096)
    CONFIGS = (TLBConfig(entries=16, associativity=2), TLBConfig(entries=8))

    def _units(self, trace, cache):
        return [
            UnitSpec(
                name=f"cfg{index}",
                run=lambda c=config: run_single_size(
                    trace, self.SCHEME, c, cache=cache
                ).to_payload(),
            )
            for index, config in enumerate(self.CONFIGS)
        ]

    def test_corrupt_entry_counted_and_healed_in_parallel(self, tmp_path):
        from repro.parallel.cache import SimulationCache

        cache = SimulationCache.open(tmp_path / "cache")
        trace = generate_trace("li", 4000, seed=3)

        first = run_units(self._units(trace, cache), jobs=2)
        assert first.ok and first.cache_corrupt_discarded == 0
        assert len(list(cache.root.rglob("*.json"))) == len(self.CONFIGS)

        faultinject.corrupt_cache_entry(cache.root, seed=0)
        second = run_units(self._units(trace, cache), jobs=2)
        assert second.ok
        # The worker-side discard travelled back as an event and shows
        # up in the sweep summary counter; the payload is recomputed.
        assert second.cache_corrupt_discarded == 1
        assert [o.result for o in second.outcomes] == [
            o.result for o in first.outcomes
        ]

        # The rewritten entry is trusted again: no discards third time.
        third = run_units(self._units(trace, cache), jobs=2)
        assert third.ok and third.cache_corrupt_discarded == 0


class TestDegradedSerial:
    def test_pool_collapse_falls_back_to_serial(self, tmp_path):
        plan = faultinject.ChaosPlan(
            tmp_path / "tokens",
            victims={f"u{index}": ("kill", 10) for index in range(4)},
        )
        report = run_units(
            _units(plan),
            jobs=2,
            supervision=SupervisorConfig(max_respawns=2),
        )
        # Strikes no-op in the parent, so degraded mode completes the
        # whole suite correctly.
        assert report.ok and report.exit_code == 0
        assert [o.result for o in report.outcomes] == [0, 11, 22, 33]
        sup = report.supervision
        assert sup["degraded"] is True
        assert sup["respawns"] <= 2

    def test_no_degraded_raises_instead(self, tmp_path):
        plan = faultinject.ChaosPlan(
            tmp_path / "tokens",
            victims={f"u{index}": ("kill", 10) for index in range(4)},
        )
        with pytest.raises(ParallelError, match="respawn budget"):
            run_units(
                _units(plan),
                jobs=2,
                supervision=SupervisorConfig(
                    max_respawns=0, degraded_ok=False
                ),
            )


class TestSharedPoolRecovery:
    def test_revived_to_full_strength_after_crash(self):
        shutdown_shared_pool()  # isolate from earlier tests
        try:
            pool = shared_task_pool(2)
            with pytest.raises(WorkerCrashError):
                pool.run_calls(calls=[(_exit_hard, ())])
            assert pool.alive_count() < 2

            # Acquisition — not crash time — restores full capacity.
            again = shared_task_pool(2)
            assert again is pool
            assert pool.alive_count() == 2
            assert pool.run_calls(
                calls=[(_double, (21,)), (_double, (4,))]
            ) == [42, 8]
        finally:
            shutdown_shared_pool()


class TestCloseUnderAdversity:
    def _wait_for_start(self, pool, timeout=10.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            for message in pool.poll(0.05):
                if message.kind == "start":
                    return
        raise AssertionError("worker never picked up the task")

    def test_close_escalates_to_sigkill_for_term_blocking_worker(self):
        def stubborn():
            # Process-wide disposition (a per-thread mask would leave
            # the queue feeder thread killable by SIGTERM).
            signal.signal(signal.SIGTERM, signal.SIG_IGN)
            time.sleep(60.0)

        pool = WorkerPool([stubborn], 1)
        pool.submit(0, 0)
        self._wait_for_start(pool)
        time.sleep(0.2)  # let the worker install its SIGTERM handler
        started = time.monotonic()
        pool.close(timeout=0.5)
        elapsed = time.monotonic() - started
        handle = pool._workers[0]
        assert elapsed < 8.0  # bounded: sentinel + SIGTERM + SIGKILL
        assert not handle.process.is_alive()
        assert handle.process.exitcode == -signal.SIGKILL

    def test_close_after_mid_run_crash_leaves_no_zombies(self):
        pool = WorkerPool([lambda: os._exit(5), lambda: 1], 2)
        pool.submit(0, 0)
        pool._workers[0].process.join(10.0)  # the crash lands first
        pool.close(timeout=5.0)
        for handle in pool._workers.values():
            assert not handle.process.is_alive()
            assert handle.process.exitcode is not None  # reaped, no zombie
        pool.close()  # idempotent
