"""Smoke + shape tests for the table/figure experiments.

These run every experiment end to end at a reduced scale and assert the
paper's *structural* findings — the full-scale numbers are produced by
the benchmark harness (see benchmarks/ and EXPERIMENTS.md).
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    ExperimentScale,
    run_fig41,
    run_fig42,
    run_fig51,
    run_fig52,
    run_headline,
    run_table31,
    run_table51,
    smoke_scale,
)
from repro.experiments.runner import EXPERIMENTS, main
from repro.experiments.table51 import TABLE51_COLUMNS
from repro.types import PAGE_4KB, PAGE_8KB, PAGE_32KB, PAGE_64KB
from repro.workloads import WORKLOAD_ORDER

SCALE = smoke_scale(trace_length=80_000, window=10_000)


@pytest.fixture(scope="module")
def table31():
    return run_table31(SCALE)


@pytest.fixture(scope="module")
def fig41():
    return run_fig41(SCALE)


@pytest.fixture(scope="module")
def fig42():
    return run_fig42(SCALE)


@pytest.fixture(scope="module")
def fig51():
    return run_fig51(SCALE)


@pytest.fixture(scope="module")
def fig52():
    return run_fig52(SCALE)


@pytest.fixture(scope="module")
def table51():
    return run_table51(SCALE)


class TestScale:
    def test_window_cannot_exceed_trace(self):
        with pytest.raises(ConfigurationError):
            ExperimentScale(trace_length=100, window=200)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentScale(trace_length=0)
        with pytest.raises(ConfigurationError):
            ExperimentScale(window=0)


class TestTable31:
    def test_all_workloads_present_in_order(self, table31):
        assert [row.name for row in table31.rows] == list(WORKLOAD_ORDER)

    def test_rows_have_positive_measurements(self, table31):
        for row in table31.rows:
            assert row.references == SCALE.trace_length
            assert row.ws_bytes > 0
            assert row.refs_per_instruction > 1.0

    def test_render_contains_every_program(self, table31):
        text = table31.render()
        for name in WORKLOAD_ORDER:
            assert name in text


class TestFig41:
    def test_normalisation_is_monotone_in_page_size(self, fig41):
        for name, per_size in fig41.values.items():
            assert per_size[PAGE_8KB] >= 0.999, name
            assert per_size[PAGE_64KB] >= per_size[PAGE_8KB] - 1e-9, name

    def test_average_in_paper_ballpark(self, fig41):
        # Paper: 1.67 at 32KB, 2.03 at 64KB (T = 10M at full scale);
        # at smoke scale we only demand the qualitative band.
        assert 1.2 < fig41.average(PAGE_32KB) < 3.0
        assert fig41.average(PAGE_64KB) >= fig41.average(PAGE_32KB)

    def test_dense_programs_inflate_least(self, fig41):
        dense = fig41.values["matrix300"][PAGE_32KB]
        sparse = fig41.values["worm"][PAGE_32KB]
        assert dense < sparse

    def test_render(self, fig41):
        assert "Figure 4.1" in fig41.render()


class TestFig42:
    def test_two_size_cheaper_than_any_single_size(self, fig42):
        # The paper's central working-set claim.  At smoke scale the tiny
        # window makes promotion slightly eager, so allow a small slack
        # per program; the strict comparison holds at benchmark scale
        # (see EXPERIMENTS.md).
        for name in fig42.workloads():
            smallest_single = min(fig42.single[name].values())
            assert fig42.two_size[name] <= smallest_single + 0.15, name
        # Across programs the claim holds on average even at smoke scale.
        average_single = min(
            fig42.average_single(size) for size in fig42.page_sizes
        )
        assert fig42.average_two_size() <= average_single

    def test_two_size_average_is_modest(self, fig42):
        assert fig42.average_two_size() < 1.3

    def test_promotion_starved_programs_stay_at_baseline(self, fig42):
        assert fig42.promotions["espresso"] == 0
        assert fig42.two_size["espresso"] == pytest.approx(1.0, abs=0.02)

    def test_render(self, fig42):
        assert "Figure 4.2" in fig42.render()


class TestFig51:
    def test_larger_pages_cut_cpi(self, fig51):
        for name in fig51.workloads():
            assert (
                fig51.single[name][PAGE_32KB].cpi_tlb
                <= fig51.single[name][PAGE_4KB].cpi_tlb + 1e-9
            ), name

    def test_two_size_close_to_32kb_for_promoting_programs(self, fig51):
        # matrix300 promotes nearly everything: the two-size bar lands
        # well under the 4KB bar (paper: close to the 32KB bar).
        four = fig51.single["matrix300"][PAGE_4KB].cpi_tlb
        two = fig51.two_size["matrix300"].cpi_tlb
        assert two < 0.5 * four

    def test_reduction_factor_definition(self, fig51):
        factor = fig51.reduction_factor("matrix300")
        four = fig51.single["matrix300"][PAGE_4KB].cpi_tlb
        large = fig51.single["matrix300"][PAGE_32KB].cpi_tlb
        assert factor == pytest.approx(four / large)

    def test_render(self, fig51):
        assert "Figure 5.1" in fig51.render()


class TestFig52:
    def test_has_both_entry_counts(self, fig52):
        for name in fig52.workloads():
            assert set(fig52.two_size[name]) == {16, 32}

    def test_more_entries_do_not_hurt_single_size(self, fig52):
        for name in fig52.workloads():
            small16 = fig52.single[name][(16, PAGE_4KB)].misses
            small32 = fig52.single[name][(32, PAGE_4KB)].misses
            assert small32 <= small16, name

    def test_tomcatv_anomaly(self, fig52):
        # The paper's set-conflict pathology: two page sizes make
        # tomcatv dramatically worse on a two-way TLB.
        assert not fig52.improves_with_two_sizes("tomcatv", 16)

    def test_majority_of_programs_improve(self, fig52):
        improving = [
            name
            for name in fig52.workloads()
            if fig52.improves_with_two_sizes(name, 16)
        ]
        assert len(improving) >= 6  # paper: 8 of 12

    def test_render(self, fig52):
        text = fig52.render()
        assert "16e-2way-exact" in text and "32e-2way-exact" in text


class TestTable51:
    def test_all_cells_present(self, table51):
        for name in table51.workloads():
            for entries in (16, 32):
                for column in TABLE51_COLUMNS:
                    assert (entries, column) in table51.values[name]

    def test_large_index_without_large_pages_degrades(self, table51):
        # Section 5.2.1: the cautionary result, visible across most
        # programs (compare columns 1 and 2).
        worse = 0
        for name in table51.workloads():
            baseline = table51.cpi(name, 16, "4KB")
            degraded = table51.cpi(name, 16, "4KB large index")
            if degraded > baseline * 1.1:
                worse += 1
        assert worse >= 8

    def test_exact_index_usually_at_least_as_good_as_large(self, table51):
        better_or_equal = 0
        for name in table51.workloads():
            exact = table51.cpi(name, 32, "4KB/32KB exact index")
            large = table51.cpi(name, 32, "4KB/32KB large index")
            if exact <= large * 1.25:
                better_or_equal += 1
        assert better_or_equal >= 8

    def test_render(self, table51):
        text = table51.render()
        assert "16-entry" in text and "32-entry" in text


class TestHeadlineAndRunner:
    def test_headline_runs(self):
        result = run_headline(SCALE)
        assert result.ws_normalized_64kb >= result.ws_normalized_32kb
        assert 0 < len(result.improving_programs_16) <= 12
        assert "Headline" in result.render()

    def test_runner_registry_covers_all_experiments(self):
        paper_artifacts = {
            "table31",
            "fig41",
            "fig42",
            "fig51",
            "fig52",
            "table51",
            "headline",
        }
        extensions = {
            "walkcost",
            "memdemand",
            "twolevel",
            "pairs",
            "threshold",
            "penalty",
            "probe",
            "replacement",
            "split",
            "multiprogramming",
        }
        assert set(EXPERIMENTS) == paper_artifacts | extensions

    def test_runner_main_single_experiment(self, capsys):
        code = main(
            ["table31", "--trace-length", "20000", "--window", "4000",
             "--no-cache"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Table 3.1" in output
