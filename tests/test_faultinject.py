"""Fault-injection tests: every corruption fails loudly-but-locally.

Byte-level: an ``RPT2`` trace flipped or truncated at *every* offset
must raise a structured :class:`~repro.errors.TraceError` subclass —
never a silent wrong result, never a bare ``struct.error`` or
``ValueError`` from numpy.

Exception-level: transient faults injected into the simulation drivers
must be survivable via the retry layer, and a corrupted trace *cache*
must self-heal instead of aborting an experiment.

These run in the tier-1 suite and also as the dedicated CI smoke job
``pytest -q -m faultinject``.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TraceError
from repro.robustness import RetryPolicy, call_with_retry
from repro.robustness import faultinject
from repro.sim.config import SingleSizeScheme, TLBConfig
from repro.sim.driver import run_single_size, run_two_sizes
from repro.sim.config import TwoSizeScheme
from repro.sim.sweep import sweep_single_size
from repro.trace.record import Trace
from repro.trace.trace_io import read_trace, write_trace
from repro.types import PAGE_4KB
from repro.workloads import generate_trace
from repro.workloads.registry import cached_trace

pytestmark = pytest.mark.faultinject


def tiny_trace():
    return Trace(
        np.array([0x1000, 0x2000, 0x3000, 0x1004, 0x2008], dtype=np.uint32),
        np.array([0, 1, 2, 0, 1], dtype=np.uint8),
        name="tiny",
        refs_per_instruction=1.3,
    )


@pytest.fixture
def trace_file(tmp_path):
    path = tmp_path / "t.rpt"
    write_trace(path, tiny_trace())
    return path


class TestByteFlips:
    def test_every_flipped_byte_raises_a_trace_error(self, trace_file):
        pristine = trace_file.read_bytes()
        for offset in range(len(pristine)):
            faultinject.flip_byte(trace_file, offset)
            try:
                with pytest.raises(TraceError):
                    read_trace(trace_file)
            except BaseException:
                raise AssertionError(
                    f"flipping byte {offset} did not raise a TraceError"
                )
            finally:
                trace_file.write_bytes(pristine)

    def test_flip_never_leaks_low_level_errors(self, trace_file):
        # struct.error / numpy ValueError escaping would mean a caller
        # cannot distinguish corruption from a programming bug.
        pristine = trace_file.read_bytes()
        for offset in range(len(pristine)):
            faultinject.flip_byte(trace_file, offset)
            try:
                read_trace(trace_file)
            except TraceError:
                pass
            finally:
                trace_file.write_bytes(pristine)

    def test_flip_restores_when_flipped_back(self, trace_file):
        faultinject.flip_byte(trace_file, 10, mask=0x40)
        faultinject.flip_byte(trace_file, 10, mask=0x40)
        assert read_trace(trace_file) == tiny_trace()


class TestTruncation:
    def test_every_truncation_length_raises_a_trace_error(self, trace_file):
        pristine = trace_file.read_bytes()
        for length in range(len(pristine)):
            faultinject.truncate_file(trace_file, length)
            with pytest.raises(TraceError):
                read_trace(trace_file)
            trace_file.write_bytes(pristine)

    def test_legacy_rpt1_truncation_raises(self, tmp_path):
        from repro.trace.trace_io import _encode_body

        path = tmp_path / "legacy.rpt"
        pristine = b"RPT1" + _encode_body(tiny_trace())
        # RPT1 has no checksum, but structural parsing still catches
        # every truncation (the arrays no longer match their counts).
        for length in range(len(pristine)):
            path.write_bytes(pristine[:length])
            with pytest.raises(TraceError):
                read_trace(path)


class TestCorruptionHelpers:
    def test_corrupt_trace_is_deterministic(self, tmp_path):
        first = tmp_path / "a.rpt"
        second = tmp_path / "b.rpt"
        write_trace(first, tiny_trace())
        write_trace(second, tiny_trace())
        offset_a = faultinject.corrupt_trace(first, seed=7)
        offset_b = faultinject.corrupt_trace(second, seed=7)
        assert offset_a == offset_b
        assert first.read_bytes() == second.read_bytes()

    def test_corrupt_trace_truncate_mode(self, trace_file):
        size = trace_file.stat().st_size
        kept = faultinject.corrupt_trace(trace_file, mode="truncate", seed=3)
        assert trace_file.stat().st_size == kept < size

    def test_bad_arguments_rejected(self, trace_file):
        with pytest.raises(ConfigurationError):
            faultinject.flip_byte(trace_file, 10 ** 9)
        with pytest.raises(ConfigurationError):
            faultinject.flip_byte(trace_file, 0, mask=0)
        with pytest.raises(ConfigurationError):
            faultinject.truncate_file(trace_file, 10 ** 9)
        with pytest.raises(ConfigurationError):
            faultinject.corrupt_trace(trace_file, mode="melt")


class TestSimulationFaults:
    def test_injected_fault_hits_single_size_driver(self):
        trace = generate_trace("li", 2_000)
        with faultinject.inject(faultinject.FaultPlan(times=1)):
            with pytest.raises(faultinject.TransientInjectedFault):
                run_single_size(
                    trace, SingleSizeScheme(PAGE_4KB), TLBConfig(16)
                )
        # The plan is disarmed outside the context manager.
        result = run_single_size(
            trace, SingleSizeScheme(PAGE_4KB), TLBConfig(16)
        )
        assert result.references == 2_000

    def test_injected_fault_hits_policy_driver_and_sweep(self):
        trace = generate_trace("li", 2_000)
        with faultinject.inject(faultinject.FaultPlan(times=2)):
            with pytest.raises(faultinject.TransientInjectedFault):
                run_two_sizes(trace, TwoSizeScheme(window=500), [TLBConfig(16)])
            with pytest.raises(faultinject.TransientInjectedFault):
                sweep_single_size(trace, [PAGE_4KB], [TLBConfig(16)])

    def test_site_filter_limits_blast_radius(self):
        trace = generate_trace("li", 2_000)
        with faultinject.inject(
            faultinject.FaultPlan(times=99, sites=["sim.sweep"])
        ) as plan:
            result = run_single_size(
                trace, SingleSizeScheme(PAGE_4KB), TLBConfig(16)
            )
        assert result.references == 2_000
        assert plan.triggered == 0

    def test_transient_fault_survived_by_retry(self):
        trace = generate_trace("li", 2_000)
        with faultinject.inject(faultinject.FaultPlan(times=2)):
            result, attempts = call_with_retry(
                lambda: run_single_size(
                    trace, SingleSizeScheme(PAGE_4KB), TLBConfig(16)
                ),
                policy=RetryPolicy(max_attempts=3, base_delay=0.0),
                sleep=lambda _: None,
            )
        assert attempts == 3
        assert result.misses > 0


class TestCacheSelfHeal:
    def test_corrupt_cached_trace_regenerates(self, tmp_path):
        cache = tmp_path / "cache"
        original = cached_trace("li", 3_000, cache_dir=cache)
        (cached_path,) = cache.glob("*.rpt")
        faultinject.corrupt_trace(cached_path, seed=1)
        with pytest.warns(RuntimeWarning, match="corrupt cached trace"):
            healed = cached_trace("li", 3_000, cache_dir=cache)
        assert healed == original
        # The cache file itself was rewritten and reads cleanly again.
        assert read_trace(cached_path) == original
