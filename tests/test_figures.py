"""Tests for the bar-chart and CSV figure output."""

import pytest

from repro.errors import ReproError
from repro.experiments import run_fig51, run_fig52, smoke_scale
from repro.report import GroupedBarChart, series_csv


class TestGroupedBarChart:
    def test_basic_rendering(self):
        chart = GroupedBarChart(["4KB", "32KB"], width=20, title="Demo")
        chart.add_group("li", {"4KB": 0.4, "32KB": 0.1})
        chart.add_group("worm", {"4KB": 0.3, "32KB": 0.2})
        text = chart.render()
        assert text.startswith("Demo")
        assert "li" in text and "worm" in text
        assert "0.400" in text and "0.100" in text

    def test_bars_scale_to_global_peak(self):
        chart = GroupedBarChart(["a"], width=20)
        chart.add_group("big", {"a": 10.0})
        chart.add_group("small", {"a": 5.0})
        lines = chart.render().splitlines()
        big_bar = lines[1].count("█")
        small_bar = lines[3].count("█")
        assert big_bar == 20
        assert small_bar == 10

    def test_zero_value_gets_a_tip_mark(self):
        chart = GroupedBarChart(["a"], width=20)
        chart.add_group("g", {"a": 0.0})
        assert "▏" in chart.render()

    def test_missing_series_rejected(self):
        chart = GroupedBarChart(["a", "b"])
        with pytest.raises(ReproError):
            chart.add_group("g", {"a": 1.0})

    def test_negative_value_rejected(self):
        chart = GroupedBarChart(["a"])
        with pytest.raises(ReproError):
            chart.add_group("g", {"a": -1.0})

    def test_empty_chart_rejected(self):
        with pytest.raises(ReproError):
            GroupedBarChart([])
        with pytest.raises(ReproError):
            GroupedBarChart(["a"]).render()
        with pytest.raises(ReproError):
            GroupedBarChart(["a"], width=2)


class TestSeriesCsv:
    def test_round_trip_structure(self):
        csv = series_csv(
            ["li", "worm"],
            {"4KB": {"li": 0.4, "worm": 0.3}, "32KB": {"li": 0.1, "worm": 0.2}},
        )
        lines = csv.splitlines()
        assert lines[0] == "program,4KB,32KB"
        assert lines[1].startswith("li,0.4")
        assert lines[2].startswith("worm,0.3")

    def test_missing_cell_rejected(self):
        with pytest.raises(ReproError):
            series_csv(["li"], {"4KB": {}})

    def test_no_columns_rejected(self):
        with pytest.raises(ReproError):
            series_csv(["li"], {})


class TestFigureIntegration:
    @pytest.fixture(scope="class")
    def fig51(self):
        return run_fig51(smoke_scale(trace_length=30_000, window=4_000))

    def test_fig51_chart_has_all_programs(self, fig51):
        chart = fig51.render_chart()
        for name in fig51.workloads():
            assert name in chart

    def test_fig51_csv_parses(self, fig51):
        lines = fig51.to_csv().splitlines()
        assert lines[0].split(",") == [
            "program", "4KB", "8KB", "32KB", "4KB/32KB",
        ]
        assert len(lines) == 13  # header + 12 programs
        for line in lines[1:]:
            cells = line.split(",")
            assert len(cells) == 5
            for cell in cells[1:]:
                assert float(cell) >= 0.0

    def test_fig52_chart_and_csv(self):
        result = run_fig52(smoke_scale(trace_length=30_000, window=4_000))
        chart = result.render_chart()
        assert "16e-2way-exact" in chart and "32e-2way-exact" in chart
        csv = result.to_csv()
        assert "16e-4KB/32KB" in csv.splitlines()[0]


class TestWorkingSetCsvExports:
    def test_fig41_csv(self):
        from repro.experiments import run_fig41, smoke_scale

        result = run_fig41(smoke_scale(trace_length=30_000, window=4_000))
        lines = result.to_csv().splitlines()
        assert lines[0] == "program,8KB,16KB,32KB,64KB"
        assert len(lines) == 13
        for line in lines[1:]:
            for cell in line.split(",")[1:]:
                assert float(cell) >= 0.99

    def test_fig42_csv(self):
        from repro.experiments import run_fig42, smoke_scale

        result = run_fig42(smoke_scale(trace_length=30_000, window=4_000))
        header = result.to_csv().splitlines()[0]
        assert header.endswith("4KB/32KB")
