"""Tests for the hashed page table, including equivalence with the
two-level radix organisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, SimulationError
from repro.mem import TwoPageSizePageTable, WalkCycleModel, measure_walk_costs
from repro.mem.hashed_table import HashedPageTable
from repro.types import PAGE_4KB, PAGE_32KB, PAIR_4KB_32KB


class TestBasicMapping:
    def test_small_walk(self):
        table = HashedPageTable()
        table.map_small(5, 7 * PAGE_4KB)
        translation = table.walk(5 * PAGE_4KB + 0x10)
        assert translation.frame_base == 7 * PAGE_4KB
        assert translation.page_size == PAGE_4KB
        assert translation.memory_touches >= 1

    def test_large_walk_probes_small_first(self):
        table = HashedPageTable()
        table.map_large(3, 9 * PAGE_32KB)
        translation = table.walk(3 * PAGE_32KB + 0x123)
        assert translation.frame_base == 9 * PAGE_32KB
        assert translation.page_size == PAGE_32KB
        # Failed small probe (>=1 touch) plus the large probe.
        assert translation.memory_touches >= 2

    def test_unmapped(self):
        assert HashedPageTable().walk(0xDEAD000) is None

    def test_unmap(self):
        table = HashedPageTable()
        table.map_small(5, PAGE_4KB)
        assert table.unmap_small(5) == PAGE_4KB
        assert table.unmap_small(5) is None
        assert table.walk(5 * PAGE_4KB) is None

    def test_counts_and_load_factor(self):
        table = HashedPageTable(buckets=64)
        for block in range(10):
            table.map_small(block * 7, block * PAGE_4KB)
        table.map_large(100, PAGE_32KB)
        assert table.small_mapping_count() == 10
        assert table.large_mapping_count() == 1
        assert table.load_factor() == pytest.approx(11 / 64)

    def test_invariants_enforced(self):
        table = HashedPageTable()
        table.map_small(8, 0)  # block 8 = chunk 1
        with pytest.raises(SimulationError):
            table.map_large(1, PAGE_32KB)
        table.unmap_small(8)
        table.map_large(1, PAGE_32KB)
        with pytest.raises(SimulationError):
            table.map_small(9, 0)

    def test_alignment_and_buckets_validated(self):
        with pytest.raises(ConfigurationError):
            HashedPageTable(buckets=100)
        with pytest.raises(ConfigurationError):
            HashedPageTable().map_small(1, 0x123)

    def test_remap_replaces(self):
        table = HashedPageTable()
        table.map_small(5, PAGE_4KB)
        table.map_small(5, 2 * PAGE_4KB)
        assert table.small_mapping_count() == 1
        assert table.walk(5 * PAGE_4KB).frame_base == 2 * PAGE_4KB


class TestEquivalenceWithRadixTable:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=255), st.booleans()),
            max_size=60,
        )
    )
    def test_same_translations(self, operations):
        """Both organisations must map/walk identically (touches aside)."""
        radix = TwoPageSizePageTable(PAIR_4KB_32KB)
        hashed = HashedPageTable(PAIR_4KB_32KB, buckets=64)
        for number, large in operations:
            if large:
                chunk = number
                frame = (number + 1) * PAGE_32KB
                try:
                    radix.map_large(chunk, frame)
                except SimulationError:
                    with pytest.raises(SimulationError):
                        hashed.map_large(chunk, frame)
                    continue
                hashed.map_large(chunk, frame)
            else:
                block = number
                frame = (number + 1) * PAGE_4KB
                try:
                    radix.map_small(block, frame)
                except SimulationError:
                    with pytest.raises(SimulationError):
                        hashed.map_small(block, frame)
                    continue
                hashed.map_small(block, frame)
        rng = np.random.default_rng(1)
        for address in rng.integers(0, 256 * PAGE_32KB, size=200):
            left = radix.walk(int(address))
            right = hashed.walk(int(address))
            if left is None:
                assert right is None
            else:
                assert right is not None
                assert left.frame_base == right.frame_base
                assert left.page_size == right.page_size


class TestHandlerCostComparison:
    def test_lightly_loaded_hash_beats_radix_on_small_pages(self):
        # One chain entry vs two radix levels.
        radix = TwoPageSizePageTable()
        hashed = HashedPageTable(buckets=256)
        for block in range(20):
            radix.map_small(block, block * PAGE_4KB)
            hashed.map_small(block, block * PAGE_4KB)
        addresses = [block * PAGE_4KB for block in range(20)]
        model = WalkCycleModel()
        assert measure_walk_costs(hashed, addresses, model) < (
            measure_walk_costs(radix, addresses, model)
        )

    def test_overloaded_hash_degrades(self):
        # Cram many mappings into few buckets: chains grow, and the
        # radix walk's fixed two touches win.
        radix = TwoPageSizePageTable()
        hashed = HashedPageTable(buckets=2)
        for block in range(64):
            radix.map_small(block, block * PAGE_4KB)
            hashed.map_small(block, block * PAGE_4KB)
        addresses = [block * PAGE_4KB for block in range(64)]
        model = WalkCycleModel()
        assert measure_walk_costs(hashed, addresses, model) > (
            measure_walk_costs(radix, addresses, model)
        )
