"""Cross-module integration tests.

These tie the substrates together the way the experiments do and check
the global invariants that no single module can see on its own:

* the MMU's TLB behaviour must equal the bare driver's on the same trace;
* stack-simulation sweeps must agree with direct TLB models on real
  workload traces (not just random streams);
* the two-page-size driver's promotion accounting must be consistent
  with the dynamic working-set calculator's;
* trace serialisation must be transparent to simulation results.
"""

import pytest

from repro.mem import MemoryManagementUnit, two_size_penalty
from repro.policy import DynamicPromotionPolicy, dynamic_average_working_set
from repro.sim import (
    SingleSizeScheme,
    TLBConfig,
    TwoSizeScheme,
    run_single_size,
    run_two_sizes,
    sweep_single_size,
)
from repro.tlb import FullyAssociativeTLB, IndexingScheme
from repro.trace import read_trace, write_trace
from repro.types import MB, PAGE_4KB, PAGE_8KB, PAGE_32KB, PAIR_4KB_32KB
from repro.workloads import generate_trace

LENGTH = 60_000
WINDOW = 8_000


@pytest.fixture(scope="module")
def li_trace():
    return generate_trace("li", LENGTH, seed=0)


@pytest.fixture(scope="module")
def matrix_trace():
    return generate_trace("matrix300", LENGTH, seed=0)


class TestMMUAgreesWithDriver:
    def test_same_misses_and_promotions(self, li_trace):
        config = TLBConfig(16)
        scheme = TwoSizeScheme(window=WINDOW)
        (driver,) = run_two_sizes(li_trace, scheme, [config])

        policy = DynamicPromotionPolicy(PAIR_4KB_32KB, WINDOW)
        mmu = MemoryManagementUnit(
            FullyAssociativeTLB(16),
            policy,
            penalty=two_size_penalty(),
            memory_size=64 * MB,
        )
        for address in li_trace.addresses:
            mmu.translate(int(address))

        assert mmu.tlb.stats.misses == driver.misses
        assert mmu.stats.promotions_applied == driver.promotions
        assert mmu.stats.demotions_applied == driver.demotions

    def test_mmu_cycles_match_metric(self, li_trace):
        policy = DynamicPromotionPolicy(PAIR_4KB_32KB, WINDOW)
        mmu = MemoryManagementUnit(
            FullyAssociativeTLB(16), policy, memory_size=64 * MB
        )
        for address in li_trace.addresses[:20_000]:
            mmu.translate(int(address))
        assert mmu.stats.cycles == pytest.approx(
            mmu.tlb.stats.misses * 25.0
        )


class TestStackSimAgreesOnRealTraces:
    @pytest.mark.parametrize("workload", ["li", "espresso", "tomcatv"])
    def test_sweep_matches_direct(self, workload):
        trace = generate_trace(workload, 30_000, seed=1)
        for config in (TLBConfig(16), TLBConfig(16, 2), TLBConfig(32, 2)):
            for page_size in (PAGE_4KB, PAGE_8KB, PAGE_32KB):
                swept = sweep_single_size(trace, [page_size], [config])
                direct = run_single_size(
                    trace, SingleSizeScheme(page_size), config
                )
                assert (
                    swept[(page_size, config.label)].misses == direct.misses
                ), (workload, config.label, page_size)


class TestPolicyConsistency:
    def test_driver_and_ws_calculator_agree_on_promotions(self, matrix_trace):
        scheme = TwoSizeScheme(window=WINDOW)
        (driver,) = run_two_sizes(matrix_trace, scheme, [TLBConfig(16)])
        dynamic = dynamic_average_working_set(
            matrix_trace, PAIR_4KB_32KB, WINDOW
        )
        assert driver.promotions == dynamic.promotions
        assert driver.demotions == dynamic.demotions

    def test_indexing_schemes_share_policy_decisions(self, matrix_trace):
        # All configs in one pass see identical promotion events.
        scheme = TwoSizeScheme(window=WINDOW)
        configs = [
            TLBConfig(16, 2, IndexingScheme.SMALL_INDEX),
            TLBConfig(16, 2, IndexingScheme.LARGE_INDEX),
            TLBConfig(16, 2, IndexingScheme.EXACT_INDEX),
        ]
        results = run_two_sizes(matrix_trace, scheme, configs)
        assert len({result.promotions for result in results}) == 1


class TestSerialisationTransparency:
    def test_simulation_identical_after_round_trip(self, tmp_path, li_trace):
        path = tmp_path / "li.rpt"
        write_trace(path, li_trace)
        loaded = read_trace(path)
        config = TLBConfig(16, 2)
        original = run_single_size(li_trace, SingleSizeScheme(PAGE_4KB), config)
        reloaded = run_single_size(loaded, SingleSizeScheme(PAGE_4KB), config)
        assert original.misses == reloaded.misses
        assert original.cpi_tlb == reloaded.cpi_tlb


class TestGlobalInvariants:
    @pytest.mark.parametrize("workload", ["li", "worm", "x11perf"])
    def test_two_size_misses_bounded_by_extremes(self, workload):
        # A sanity band: the two-size scheme cannot miss less than the
        # all-32KB TLB minus policy noise, nor more than the all-4KB one
        # plus invalidation-induced refills.
        trace = generate_trace(workload, 40_000, seed=2)
        config = TLBConfig(16)
        small = run_single_size(trace, SingleSizeScheme(PAGE_4KB), config)
        (two,) = run_two_sizes(
            trace, TwoSizeScheme(window=WINDOW), [config]
        )
        assert two.misses <= small.misses + two.invalidations + 1

    def test_invalidations_accompany_transitions(self, matrix_trace):
        (two,) = run_two_sizes(
            matrix_trace, TwoSizeScheme(window=WINDOW), [TLBConfig(16)]
        )
        if two.promotions == 0 and two.demotions == 0:
            assert two.invalidations == 0
