"""Kernel-coverage contract tests (marker: ``kernelcov``).

The contract this suite enforces, config-space cell by cell:

* ``kernel="auto"`` never *silently* drops to the scalar per-reference
  walk — every supported configuration resolves to an array kernel
  (``vector`` or ``sampled``), and the one remaining scalar island
  (PLRU replacement) announces itself with a
  :class:`~repro.perf.kernels.KernelFallbackWarning`.
* The vector kernels (single-size, two-size, two-level, multiprogrammed
  and multiprogrammed-two-size) stay bit-exact against their scalar
  oracles.
* The sampled-set kernel is bit-exact at ``exact=True`` and, when
  estimating, reports a 95% confidence interval that actually covers
  the exact count at (at least) its nominal rate.

Run alone with ``pytest -m kernelcov``.
"""

import warnings

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.perf.kernels import (
    KERNEL_SAMPLED,
    KERNEL_SCALAR,
    KERNEL_VECTOR,
    KernelFallbackWarning,
)
from repro.perf.sampled import sampled_replacement_counts
from repro.sim import (
    SingleSizeScheme,
    TLBConfig,
    TwoLevelConfig,
    TwoSizeScheme,
    run_multiprogrammed,
    run_single_size,
    run_two_level,
    run_two_sizes,
    sweep_multiprogrammed_two_sizes,
    sweep_two_level,
)
from repro.tlb import ContextSwitchPolicy
from repro.tlb.indexing import IndexingScheme, ProbeStrategy
from repro.workloads import generate_trace

pytestmark = pytest.mark.kernelcov

SMALL = SingleSizeScheme(page_size=4096)
TWO_SIZE = TwoSizeScheme()


@pytest.fixture(scope="module")
def trace():
    return generate_trace("espresso", 12_000, 0)


@pytest.fixture(scope="module")
def programs():
    return [
        generate_trace("espresso", 6_000, 0),
        generate_trace("matrix300", 6_000, 1),
        generate_trace("li", 6_000, 2),
    ]


def _no_fallback_warnings(record):
    return [w for w in record if issubclass(w.category, KernelFallbackWarning)]


#: Every flat (single-level, single-program) shape the drivers accept,
#: short of PLRU: LRU across the Table 3.1 organisations plus FIFO and
#: random on both fully-associative and set-associative geometries.
SUPPORTED_FLAT = (
    TLBConfig(16),
    TLBConfig(64, associativity=2),
    TLBConfig(
        64,
        associativity=2,
        probe_strategy=ProbeStrategy.SEQUENTIAL,
    ),
    TLBConfig(32, associativity=4, scheme=IndexingScheme.SMALL_INDEX),
    TLBConfig(16, replacement="fifo"),
    TLBConfig(128, associativity=2, replacement="fifo"),
    TLBConfig(16, replacement="random"),
    TLBConfig(128, associativity=2, replacement="random"),
)


class TestNoSilentFallback:
    """Config-space enumeration: auto resolves loud or fast, never quiet."""

    @pytest.mark.parametrize(
        "config", SUPPORTED_FLAT, ids=lambda c: f"{c.label}-{c.replacement}"
    )
    def test_flat_auto_resolves_array_kernel(self, trace, config):
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            result = run_single_size(trace, SMALL, config)
        assert not _no_fallback_warnings(record)
        assert result.resolved_kernel in (KERNEL_VECTOR, KERNEL_SAMPLED)
        assert result.fallback_reason is None
        if config.replacement in ("fifo", "random"):
            assert result.resolved_kernel == KERNEL_SAMPLED
            assert result.sampling is not None

    def test_two_size_auto_resolves_vector(self, trace):
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            results = run_two_sizes(
                trace, TWO_SIZE, [TLBConfig(16), TLBConfig(64, associativity=2)]
            )
        assert not _no_fallback_warnings(record)
        assert all(r.resolved_kernel == KERNEL_VECTOR for r in results)

    @pytest.mark.parametrize("scheme", [SMALL, TWO_SIZE], ids=["1size", "2size"])
    def test_two_level_auto_resolves_vector(self, trace, scheme):
        config = TwoLevelConfig(TLBConfig(4), TLBConfig(64, associativity=2))
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            result = run_two_level(trace, scheme, config)
        assert not _no_fallback_warnings(record)
        assert result.resolved_kernel == KERNEL_VECTOR
        assert result.fallback_reason is None

    @pytest.mark.parametrize("policy", list(ContextSwitchPolicy))
    def test_multiprog_auto_resolves_vector(self, programs, policy):
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            result = run_multiprogrammed(
                programs, TLBConfig(32), quantum=1_000, switch_policy=policy
            )
        assert not _no_fallback_warnings(record)
        assert result.resolved_kernel == KERNEL_VECTOR

    def test_multiprog_two_size_auto_resolves_vector(self, programs):
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            cells = sweep_multiprogrammed_two_sizes(
                programs, (TLBConfig(32),), quanta=(1_000,)
            )
        assert not _no_fallback_warnings(record)
        assert cells and all(
            r.resolved_kernel == KERNEL_VECTOR for r in cells.values()
        )

    def test_plru_auto_falls_back_loudly(self, trace):
        config = TLBConfig(16, associativity=4, replacement="plru")
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            result = run_single_size(trace, SMALL, config)
        fired = _no_fallback_warnings(record)
        assert fired and "fell back" in str(fired[0].message)
        assert result.resolved_kernel == KERNEL_SCALAR
        assert result.fallback_reason

    def test_non_lru_two_level_falls_back_loudly(self, trace):
        config = TwoLevelConfig(
            TLBConfig(4),
            TLBConfig(64, associativity=2, replacement="plru"),
        )
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            result = run_two_level(trace, SMALL, config)
        fired = _no_fallback_warnings(record)
        assert fired and "fell back" in str(fired[0].message)
        assert result.resolved_kernel == KERNEL_SCALAR
        assert result.fallback_reason

    def test_explicit_vector_on_sampled_only_config_raises(self, trace):
        with pytest.raises(ConfigurationError):
            run_single_size(
                trace, SMALL, TLBConfig(16, replacement="fifo"), kernel="vector"
            )


TWO_LEVEL_GRIDS = (
    TwoLevelConfig(TLBConfig(4), TLBConfig(32)),
    TwoLevelConfig(TLBConfig(4), TLBConfig(64, associativity=2)),
    TwoLevelConfig(
        TLBConfig(4),
        TLBConfig(
            64,
            associativity=2,
            probe_strategy=ProbeStrategy.SEQUENTIAL,
        ),
    ),
    TwoLevelConfig(TLBConfig(8, associativity=2), TLBConfig(128, associativity=4)),
)


class TestTwoLevelOracle:
    """The reconstructed L1 victim stream matches the composite model."""

    @pytest.mark.parametrize("scheme", [SMALL, TWO_SIZE], ids=["1size", "2size"])
    def test_vector_matches_scalar(self, trace, scheme):
        by_l1 = {}
        for config in TWO_LEVEL_GRIDS:
            by_l1.setdefault(config.level1, []).append(config)
        for configs in by_l1.values():
            vector = sweep_two_level(trace, scheme, configs, kernel="vector")
            scalar = sweep_two_level(trace, scheme, configs, kernel="scalar")
            assert vector == scalar  # audit fields excluded from equality
            assert all(r.resolved_kernel == KERNEL_VECTOR for r in vector)
            assert all(r.resolved_kernel == KERNEL_SCALAR for r in scalar)

    def test_l2_absorbs_l1_misses(self, trace):
        result = run_two_level(trace, SMALL, TWO_LEVEL_GRIDS[1])
        flat = run_single_size(trace, SMALL, TWO_LEVEL_GRIDS[1].level1)
        assert result.misses + result.l2_hits == flat.misses
        assert result.misses < flat.misses


MULTIPROG2_GRIDS = (
    TLBConfig(16),
    TLBConfig(32, associativity=2),
    TLBConfig(
        32,
        associativity=2,
        probe_strategy=ProbeStrategy.SEQUENTIAL,
    ),
    TLBConfig(32, associativity=2, scheme=IndexingScheme.SMALL_INDEX),
)


class TestMultiprogTwoSizeOracle:
    """The composed key transform matches the per-reference walk."""

    def test_vector_matches_scalar(self, programs):
        kwargs = dict(
            scheme=TWO_SIZE,
            quanta=(500, 2_000),
            policies=(ContextSwitchPolicy.FLUSH, ContextSwitchPolicy.ASID),
        )
        vector = sweep_multiprogrammed_two_sizes(
            programs, MULTIPROG2_GRIDS, kernel="vector", **kwargs
        )
        scalar = sweep_multiprogrammed_two_sizes(
            programs, MULTIPROG2_GRIDS, kernel="scalar", **kwargs
        )
        assert vector.keys() == scalar.keys()
        for key in vector:
            assert vector[key] == scalar[key], key
            assert vector[key].switches > 0


SAMPLED_GEOMETRIES = (
    TLBConfig(16, replacement="fifo"),
    TLBConfig(16, replacement="random"),
    TLBConfig(64, associativity=2, replacement="fifo"),
    TLBConfig(64, associativity=2, replacement="random"),
)


class TestSampledOracle:
    """Exact mode is bit-exact; estimates and seeds are deterministic."""

    @pytest.mark.parametrize(
        "config", SAMPLED_GEOMETRIES, ids=lambda c: f"{c.label}-{c.replacement}"
    )
    def test_exact_mode_matches_scalar(self, trace, config):
        exact = run_single_size(trace, SMALL, config, exact=True)
        scalar = run_single_size(trace, SMALL, config, kernel="scalar")
        assert exact == scalar
        assert exact.sampling["exact"] is True
        assert exact.sampling["ci_low"] == exact.sampling["ci_high"]

    def test_random_replacement_is_deterministic(self, trace):
        config = TLBConfig(64, associativity=2, replacement="random")
        runs = [
            run_single_size(trace, SMALL, config, kernel="scalar")
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
        estimates = [run_single_size(trace, SMALL, config) for _ in range(2)]
        assert estimates[0] == estimates[1]
        assert estimates[0].sampling == estimates[1].sampling

    def test_replacement_seed_derives_from_config(self):
        a = TLBConfig(64, associativity=2, replacement="random")
        assert a.replacement_seed() == a.replacement_seed()
        b = TLBConfig(128, associativity=2, replacement="random")
        assert a.replacement_seed() != b.replacement_seed()

    def test_estimate_reports_interval(self, trace):
        config = TLBConfig(256, associativity=2, replacement="fifo")
        result = run_single_size(trace, SMALL, config)
        meta = result.sampling
        assert meta["exact"] is False
        assert 0 < meta["sampled_sets"] < meta["total_sets"]
        assert meta["ci_low"] <= result.misses <= meta["ci_high"]


class TestSampledCoverage:
    """Fuzzed sampled-vs-exact comparison: the 95% CI earns its name."""

    GEOMETRIES = (
        TLBConfig(128, associativity=2, replacement="fifo"),
        TLBConfig(128, associativity=2, replacement="random"),
        TLBConfig(256, associativity=4, replacement="fifo"),
    )

    def test_interval_covers_exact_at_nominal_rate(self):
        covered = total = 0
        for name, seed in (("matrix300", 0), ("espresso", 1)):
            trace = generate_trace(name, 20_000, seed)
            pages = np.asarray(
                trace.addresses >> np.uint32(12), dtype=np.int64
            )
            for config in self.GEOMETRIES:
                truth = sampled_replacement_counts(
                    pages,
                    config,
                    sample_seed=0,
                    replacement_seed=config.replacement_seed(),
                    exact=True,
                ).misses
                for sample_seed in range(20):
                    estimate = sampled_replacement_counts(
                        pages,
                        config,
                        sample_seed=sample_seed,
                        replacement_seed=config.replacement_seed(),
                    )
                    assert not estimate.exact
                    total += 1
                    covered += estimate.ci_low <= truth <= estimate.ci_high
        assert total == 120
        assert covered / total >= 0.95, f"coverage {covered}/{total}"
