"""Tests for Mattson stack simulation against naive per-config simulators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, SimulationError
from repro.stacksim import lru_miss_curve, per_set_miss_curve


def naive_lru_misses(keys, capacity):
    """Reference fully associative LRU simulator: one config at a time."""
    stack = []
    misses = 0
    for key in keys:
        if key in stack:
            stack.remove(key)
        else:
            misses += 1
            if len(stack) == capacity:
                stack.pop()
        stack.insert(0, key)
    return misses


def naive_set_assoc_misses(indices, tags, associativity):
    """Reference set-associative LRU simulator."""
    sets = {}
    misses = 0
    for index, tag in zip(indices, tags):
        stack = sets.setdefault(index, [])
        if tag in stack:
            stack.remove(tag)
        else:
            misses += 1
            if len(stack) == associativity:
                stack.pop()
        stack.insert(0, tag)
    return misses


key_streams = st.lists(st.integers(min_value=0, max_value=30), max_size=300)


class TestLruMissCurve:
    def test_empty_stream(self):
        curve = lru_miss_curve([], max_capacity=4)
        assert curve.total_references == 0
        assert curve.misses(1) == 0
        assert curve.miss_ratio(4) == 0.0

    def test_sequential_stream_always_misses(self):
        curve = lru_miss_curve(range(100), max_capacity=8)
        assert curve.misses(8) == 100
        assert curve.cold_misses == 100

    def test_single_page_hits_after_cold_miss(self):
        curve = lru_miss_curve([7] * 50, max_capacity=4)
        assert curve.misses(1) == 1
        assert curve.hits(1) == 49

    def test_loop_larger_than_capacity_thrashes(self):
        # A cyclic sweep over N+1 keys misses every time at capacity N
        # under LRU (the classic worst case).
        keys = list(range(5)) * 20
        curve = lru_miss_curve(keys, max_capacity=8)
        assert curve.misses(4) == 100
        assert curve.misses(5) == 5  # fits: only cold misses

    def test_monotone_in_capacity(self):
        rng = np.random.default_rng(42)
        keys = rng.integers(0, 40, size=2000)
        curve = lru_miss_curve(keys, max_capacity=32)
        misses = [curve.misses(c) for c in range(1, 33)]
        assert misses == sorted(misses, reverse=True)

    @settings(max_examples=40, deadline=None)
    @given(key_streams, st.integers(min_value=1, max_value=12))
    def test_matches_naive_simulator(self, keys, capacity):
        curve = lru_miss_curve(keys, max_capacity=12)
        assert curve.misses(capacity) == naive_lru_misses(keys, capacity)

    def test_numpy_input_accepted(self):
        keys = np.array([1, 2, 1, 3], dtype=np.uint32)
        assert lru_miss_curve(keys, max_capacity=4).misses(2) == 3

    def test_capacity_beyond_bound_rejected(self):
        curve = lru_miss_curve([1, 2, 3], max_capacity=4)
        with pytest.raises(SimulationError):
            curve.misses(5)

    def test_nonpositive_capacity_rejected(self):
        curve = lru_miss_curve([1], max_capacity=4)
        with pytest.raises(SimulationError):
            curve.misses(0)

    def test_bad_max_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            lru_miss_curve([1], max_capacity=0)

    def test_accounting_identity(self):
        rng = np.random.default_rng(7)
        keys = rng.integers(0, 25, size=500)
        curve = lru_miss_curve(keys, max_capacity=16)
        classified = (
            int(curve.depth_hits.sum()) + curve.cold_misses + curve.beyond_misses
        )
        assert classified == curve.total_references


class TestPerSetMissCurve:
    def test_two_sets_partition_references(self):
        # Even tags -> set 0, odd tags -> set 1.
        tags = [0, 1, 2, 3, 0, 1, 2, 3]
        indices = [tag % 2 for tag in tags]
        curve = per_set_miss_curve(indices, tags, max_associativity=4)
        # Each set holds two tags; associativity 2 gives only cold misses.
        assert curve.misses(2) == 4
        # Associativity 1: within each set the two tags alternate and evict
        # each other every time.
        assert curve.misses(1) == 8

    @settings(max_examples=40, deadline=None)
    @given(key_streams, st.integers(min_value=1, max_value=8))
    def test_matches_naive_simulator(self, tags, associativity):
        indices = [tag % 4 for tag in tags]
        curve = per_set_miss_curve(indices, tags, max_associativity=8)
        assert curve.misses(associativity) == naive_set_assoc_misses(
            indices, tags, associativity
        )

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SimulationError):
            per_set_miss_curve([0, 1], [5], max_associativity=2)

    def test_bad_associativity_bound_rejected(self):
        with pytest.raises(ConfigurationError):
            per_set_miss_curve([], [], max_associativity=0)

    def test_fully_associative_equivalence(self):
        # With a single set, per-set simulation equals fully associative.
        rng = np.random.default_rng(3)
        tags = rng.integers(0, 20, size=400)
        indices = np.zeros(400, dtype=np.int64)
        set_curve = per_set_miss_curve(indices, tags, max_associativity=16)
        full_curve = lru_miss_curve(tags, max_capacity=16)
        for capacity in (1, 2, 4, 8, 16):
            assert set_curve.misses(capacity) == full_curve.misses(capacity)
