"""Tests for CPI_TLB, WS_Normalized and the critical penalty metrics."""

import math

import pytest

from repro.errors import SimulationError
from repro.metrics import (
    NormalizedWorkingSet,
    TLBPerformance,
    arithmetic_mean,
    critical_miss_penalty_increase,
    geometric_mean,
    normalize_working_sets,
    performance_from_miss_count,
    speedup_over_baseline,
)


def perf(misses, references=100_000, rpi=1.25, penalty=20.0):
    return TLBPerformance(misses, references, rpi, penalty)


class TestTLBPerformance:
    def test_paper_formula(self):
        # CPI_TLB = MPI * penalty; MPI = misses / instructions.
        p = perf(misses=800, references=100_000, rpi=1.25, penalty=20.0)
        assert p.instructions == pytest.approx(80_000)
        assert p.misses_per_instruction == pytest.approx(0.01)
        assert p.cpi_tlb == pytest.approx(0.2)
        assert p.miss_ratio == pytest.approx(0.008)

    def test_extra_cycles_fold_into_cpi(self):
        base = perf(100)
        with_extra = TLBPerformance(100, 100_000, 1.25, 20.0, extra_cycles=800)
        assert with_extra.cpi_tlb == pytest.approx(base.cpi_tlb + 0.01)

    def test_zero_references(self):
        p = perf(0, references=0)
        assert p.cpi_tlb == 0.0
        assert p.miss_ratio == 0.0

    def test_invalid_counts_rejected(self):
        with pytest.raises(SimulationError):
            perf(-1)
        with pytest.raises(SimulationError):
            perf(10, references=5)
        with pytest.raises(SimulationError):
            TLBPerformance(1, 10, 0.0, 20.0)

    def test_penalty_factory(self):
        single = performance_from_miss_count(10, 1000, 1.25, two_page_sizes=False)
        double = performance_from_miss_count(10, 1000, 1.25, two_page_sizes=True)
        assert single.miss_penalty_cycles == 20.0
        assert double.miss_penalty_cycles == 25.0
        assert double.cpi_tlb == pytest.approx(1.25 * single.cpi_tlb)


class TestCriticalPenalty:
    def test_equal_mpi_gives_zero(self):
        assert critical_miss_penalty_increase(perf(100), perf(100)) == 0.0

    def test_halved_mpi_gives_100_percent(self):
        assert critical_miss_penalty_increase(perf(100), perf(50)) == pytest.approx(
            100.0
        )

    def test_worse_mpi_goes_negative(self):
        assert critical_miss_penalty_increase(perf(100), perf(200)) < 0

    def test_zero_miss_candidate_is_unbounded(self):
        assert math.isinf(critical_miss_penalty_increase(perf(100), perf(0)))

    def test_paper_range_example(self):
        # An 8x MPI reduction tolerates a 700% penalty increase.
        assert critical_miss_penalty_increase(
            perf(800), perf(100)
        ) == pytest.approx(700.0)


class TestSpeedup:
    def test_speedup_ratio(self):
        base = perf(200, penalty=20.0)
        two = TLBPerformance(100, 100_000, 1.25, 25.0)
        # CPI ratio: (200*20) / (100*25) = 1.6
        assert speedup_over_baseline(base, two) == pytest.approx(1.6)

    def test_zero_cpi_candidate(self):
        assert math.isinf(speedup_over_baseline(perf(10), perf(0)))


class TestNormalizedWorkingSet:
    def test_normalisation(self):
        result = normalize_working_sets(
            {"4KB": 100.0, "32KB": 167.0, "4KB/32KB": 110.0}
        )
        assert result["4KB"].normalized == pytest.approx(1.0)
        assert result["32KB"].normalized == pytest.approx(1.67)
        assert result["4KB/32KB"].percent_increase == pytest.approx(10.0)

    def test_missing_baseline_rejected(self):
        with pytest.raises(SimulationError):
            normalize_working_sets({"32KB": 5.0})

    def test_zero_baseline_degrades_gracefully(self):
        ws = NormalizedWorkingSet("x", 0.0, 5.0)
        assert ws.normalized == 1.0

    def test_negative_sizes_rejected(self):
        with pytest.raises(SimulationError):
            NormalizedWorkingSet("x", -1.0, 5.0)


class TestMeans:
    def test_arithmetic(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_geometric(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_rejects_nonpositive(self):
        with pytest.raises(SimulationError):
            geometric_mean([1.0, 0.0])

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            arithmetic_mean([])
        with pytest.raises(SimulationError):
            geometric_mean([])
