"""Integration tests for the MMU: TLB + policy + page table + allocator."""

import pytest

from repro.errors import ConfigurationError
from repro.mem import MemoryManagementUnit, single_size_penalty
from repro.policy import DynamicPromotionPolicy, StaticLargePolicy, StaticSmallPolicy
from repro.tlb import FullyAssociativeTLB
from repro.types import MB, PAGE_4KB, PAGE_32KB, PAIR_4KB_32KB


def make_mmu(policy=None, entries=16, memory=4 * MB):
    if policy is None:
        policy = DynamicPromotionPolicy(PAIR_4KB_32KB, window=64)
    return MemoryManagementUnit(
        FullyAssociativeTLB(entries), policy, memory_size=memory
    )


class TestBasicTranslation:
    def test_first_touch_faults_then_hits(self):
        mmu = make_mmu()
        first = mmu.translate(0x1000)
        assert not first.tlb_hit
        assert first.page_fault
        assert first.cycles == 25.0  # two-size penalty default
        second = mmu.translate(0x1004)
        assert second.tlb_hit
        assert second.cycles == 0.0

    def test_same_page_same_frame(self):
        mmu = make_mmu()
        first = mmu.translate(0x2000)
        second = mmu.translate(0x2FFC)
        assert first.physical & ~0xFFF == second.physical & ~0xFFC & ~0xFFF
        assert second.physical - first.physical == 0xFFC

    def test_different_pages_different_frames(self):
        mmu = make_mmu()
        one = mmu.translate(0x0)
        two = mmu.translate(0x1000)
        assert (one.physical >> 12) != (two.physical >> 12)

    def test_offset_preserved(self):
        mmu = make_mmu()
        outcome = mmu.translate(0x5678)
        assert outcome.physical & 0xFFF == 0x678

    def test_custom_penalty(self):
        policy = StaticSmallPolicy(PAIR_4KB_32KB)
        mmu = MemoryManagementUnit(
            FullyAssociativeTLB(4),
            policy,
            penalty=single_size_penalty(),
            memory_size=MB,
        )
        assert mmu.translate(0).cycles == 20.0

    def test_memory_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            make_mmu(memory=PAGE_4KB)


class TestPromotionMechanics:
    def test_promotion_consolidates_chunk(self):
        mmu = make_mmu()
        # Touch four blocks of chunk 0: the fourth promotes.
        for block in range(4):
            mmu.translate(block * PAGE_4KB)
        assert mmu.stats.promotions_applied == 1
        assert mmu.page_table.large_mapping_count() == 1
        assert mmu.page_table.small_mapping_count() == 0
        # Resident blocks were copied into the large frame.
        assert mmu.stats.blocks_copied == 3

    def test_promoted_chunk_translates_with_large_page(self):
        mmu = make_mmu()
        for block in range(4):
            mmu.translate(block * PAGE_4KB)
        outcome = mmu.translate(7 * PAGE_4KB + 0x10)
        frame = mmu.page_table.lookup_large(0)
        assert outcome.physical == frame + 7 * PAGE_4KB + 0x10

    def test_promotion_invalidates_small_tlb_entries(self):
        mmu = make_mmu()
        for block in range(4):
            mmu.translate(block * PAGE_4KB)
        assert mmu.tlb.stats.invalidations == 3  # 3 small entries existed

    def test_promotion_cancelled_under_fragmentation(self):
        # Fill physical memory with small frames so that no contiguous
        # 32KB region remains, then trigger a promotion.
        policy = DynamicPromotionPolicy(PAIR_4KB_32KB, window=4096)
        mmu = make_mmu(policy=policy, memory=MB)
        # Fill memory with 4KB frames, then free every other frame:
        # plenty of small frames remain but no contiguous 32KB block.
        frames = []
        while True:
            frame = mmu.allocator.try_allocate(PAGE_4KB)
            if frame is None:
                break
            frames.append(frame)
        for frame in sorted(frames)[::2]:
            mmu.allocator.free(frame)
        assert mmu.allocator.try_allocate(PAGE_32KB) is None
        for block in range(4):
            mmu.translate(block * PAGE_4KB)
        assert mmu.stats.promotions_cancelled >= 1
        assert not policy.is_promoted(0)
        # References still translate via small pages.
        outcome = mmu.translate(0)
        assert outcome.physical is not None

    def test_demotion_frees_large_frame(self):
        policy = DynamicPromotionPolicy(PAIR_4KB_32KB, window=8)
        mmu = make_mmu(policy=policy)
        for block in range(4):
            mmu.translate(block * PAGE_4KB)
        assert mmu.stats.promotions_applied == 1
        # Age chunk 0 out of the tiny window with distant references.
        for i in range(8):
            mmu.translate((100 + i) * PAGE_32KB)
        assert mmu.stats.demotions_applied == 1
        assert mmu.page_table.lookup_large(0) is None
        # Re-touching the data is a remap, not a page fault.
        faults_before = mmu.stats.page_faults
        mmu.translate(0)
        assert mmu.stats.page_faults == faults_before


class TestStaticPolicies:
    def test_all_large_policy_maps_whole_chunks(self):
        mmu = make_mmu(policy=StaticLargePolicy(PAIR_4KB_32KB))
        mmu.translate(0x100)
        assert mmu.page_table.large_mapping_count() == 1
        # Any address in the chunk now hits.
        assert mmu.translate(PAGE_32KB - 4).tlb_hit

    def test_all_small_policy_never_promotes(self):
        mmu = make_mmu(policy=StaticSmallPolicy(PAIR_4KB_32KB))
        for block in range(8):
            mmu.translate(block * PAGE_4KB)
        assert mmu.stats.promotions_applied == 0
        assert mmu.page_table.small_mapping_count() == 8

    def test_statistics_accumulate(self):
        mmu = make_mmu(policy=StaticSmallPolicy(PAIR_4KB_32KB))
        for _ in range(3):
            mmu.translate(0x42)
        assert mmu.stats.translations == 3
        assert mmu.stats.page_faults == 1
        assert mmu.stats.cycles == 25.0


class TestAlternativePageTable:
    def test_hashed_table_backs_the_mmu(self):
        from repro.mem.hashed_table import HashedPageTable

        policy = DynamicPromotionPolicy(PAIR_4KB_32KB, window=64)
        mmu = MemoryManagementUnit(
            FullyAssociativeTLB(16),
            policy,
            memory_size=4 * MB,
            page_table=HashedPageTable(PAIR_4KB_32KB),
        )
        for block in range(4):
            mmu.translate(block * PAGE_4KB)
        assert mmu.stats.promotions_applied == 1
        assert mmu.page_table.large_mapping_count() == 1
        outcome = mmu.translate(7 * PAGE_4KB + 0x10)
        frame = mmu.page_table.lookup_large(0)
        assert outcome.physical == frame + 7 * PAGE_4KB + 0x10

    def test_both_organisations_agree_end_to_end(self):
        import numpy as np

        from repro.mem import TwoPageSizePageTable
        from repro.mem.hashed_table import HashedPageTable

        rng = np.random.default_rng(21)
        addresses = rng.integers(0, 2 * PAGE_32KB * 16, size=3000)

        def run(table):
            policy = DynamicPromotionPolicy(PAIR_4KB_32KB, window=400)
            mmu = MemoryManagementUnit(
                FullyAssociativeTLB(16),
                policy,
                memory_size=8 * MB,
                page_table=table,
            )
            return [mmu.translate(int(a)).tlb_hit for a in addresses], mmu

        radix_hits, radix_mmu = run(TwoPageSizePageTable(PAIR_4KB_32KB))
        hashed_hits, hashed_mmu = run(HashedPageTable(PAIR_4KB_32KB))
        assert radix_hits == hashed_hits
        assert (
            radix_mmu.stats.promotions_applied
            == hashed_mmu.stats.promotions_applied
        )
