"""Tests for the multiprogrammed TLB models and driver."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TraceError
from repro.sim import TLBConfig, run_multiprogrammed
from repro.tlb import ContextSwitchPolicy, FullyAssociativeTLB, MultiprogrammedTLB
from repro.trace import Trace, interleave_with_contexts
from repro.types import PAGE_4KB


def trace_of_pages(pages, name="t"):
    return Trace(
        np.array(pages, dtype=np.uint32) * PAGE_4KB,
        name=name,
        refs_per_instruction=1.25,
    )


class TestMultiprogrammedTLB:
    def test_flush_policy_empties_on_switch(self):
        tlb = MultiprogrammedTLB(FullyAssociativeTLB(8), ContextSwitchPolicy.FLUSH)
        tlb.access_single(1)
        tlb.switch_to(1)
        assert not tlb.access_single(1)  # flushed
        assert tlb.switches == 1

    def test_asid_policy_keeps_entries_across_switches(self):
        tlb = MultiprogrammedTLB(FullyAssociativeTLB(8), ContextSwitchPolicy.ASID)
        tlb.access_single(1)
        tlb.switch_to(1)
        tlb.access_single(99)
        tlb.switch_to(0)
        assert tlb.access_single(1)  # survived both switches

    def test_asid_distinguishes_same_virtual_page(self):
        # Two contexts touching page 5 must not share an entry.
        tlb = MultiprogrammedTLB(FullyAssociativeTLB(8), ContextSwitchPolicy.ASID)
        assert not tlb.access_single(5)
        tlb.switch_to(1)
        assert not tlb.access_single(5)
        tlb.switch_to(0)
        assert tlb.access_single(5)

    def test_switch_to_same_asid_is_free(self):
        tlb = MultiprogrammedTLB(FullyAssociativeTLB(8), ContextSwitchPolicy.FLUSH)
        tlb.access_single(1)
        tlb.switch_to(0)
        assert tlb.switches == 0
        assert tlb.access_single(1)

    def test_negative_asid_rejected(self):
        tlb = MultiprogrammedTLB(FullyAssociativeTLB(8), ContextSwitchPolicy.ASID)
        with pytest.raises(ConfigurationError):
            tlb.switch_to(-1)

    def test_two_page_sizes_under_asid(self):
        tlb = MultiprogrammedTLB(FullyAssociativeTLB(8), ContextSwitchPolicy.ASID)
        tlb.access(40, 5, large=True)
        tlb.switch_to(1)
        assert not tlb.access(40, 5, large=True)
        tlb.switch_to(0)
        assert tlb.access(47, 5, large=True)


class TestInterleaveWithContexts:
    def test_contexts_follow_schedule(self):
        left = trace_of_pages([1, 2, 3, 4], name="L")
        right = trace_of_pages([9, 8], name="R")
        mixed, contexts = interleave_with_contexts([left, right], quantum=2)
        assert len(mixed) == 6
        assert contexts.tolist() == [0, 0, 1, 1, 0, 0]
        # Addresses are preserved, not offset.
        assert mixed.addresses[2] == 9 * PAGE_4KB

    def test_rejects_empty(self):
        with pytest.raises(TraceError):
            interleave_with_contexts([])

    def test_rejects_bad_quantum(self):
        with pytest.raises(TraceError):
            interleave_with_contexts([trace_of_pages([1])], quantum=0)


class TestRunMultiprogrammed:
    def make_traces(self):
        rng = np.random.default_rng(7)
        return [
            trace_of_pages(rng.integers(0, 12, size=5000), name=f"p{i}")
            for i in range(3)
        ]

    def test_asid_beats_flush(self):
        traces = self.make_traces()
        config = TLBConfig(32)
        flush = run_multiprogrammed(
            traces, config, quantum=500,
            switch_policy=ContextSwitchPolicy.FLUSH,
        )
        asid = run_multiprogrammed(
            traces, config, quantum=500,
            switch_policy=ContextSwitchPolicy.ASID,
        )
        assert flush.switches == asid.switches > 0
        assert asid.misses <= flush.misses

    def test_flush_misses_grow_as_quantum_shrinks(self):
        traces = self.make_traces()
        config = TLBConfig(32)
        short = run_multiprogrammed(
            traces, config, quantum=100,
            switch_policy=ContextSwitchPolicy.FLUSH,
        )
        long = run_multiprogrammed(
            traces, config, quantum=2500,
            switch_policy=ContextSwitchPolicy.FLUSH,
        )
        assert short.misses > long.misses

    def test_result_metrics(self):
        traces = self.make_traces()
        result = run_multiprogrammed(traces, TLBConfig(16), quantum=1000)
        assert result.references == 15_000
        assert result.cpi_tlb == pytest.approx(
            result.misses / (15_000 / 1.25) * 20.0
        )
        assert result.program_names == ("p0", "p1", "p2")

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            run_multiprogrammed([], TLBConfig(16))
