"""Tests for the multiprogrammed TLB models, mixers, kernel and driver."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TraceError
from repro.parallel.cache import SimulationCache
from repro.perf.kernels import KernelFallbackWarning
from repro.perf.multiprog import count_switches, multiprog_counts
from repro.sim import TLBConfig, run_multiprogrammed, sweep_multiprogrammed
from repro.tlb import ContextSwitchPolicy, FullyAssociativeTLB, MultiprogrammedTLB
from repro.tlb.indexing import IndexingScheme
from repro.trace import Trace, interleave_with_contexts, round_robin_mix
from repro.types import PAGE_4KB

#: The Table 5.1 geometry families, restricted to single-size indexing.
GEOMETRIES = (
    TLBConfig(16),
    TLBConfig(32),
    TLBConfig(64),
    TLBConfig(16, associativity=2, scheme=IndexingScheme.SMALL_INDEX),
    TLBConfig(32, associativity=2, scheme=IndexingScheme.SMALL_INDEX),
    TLBConfig(64, associativity=4, scheme=IndexingScheme.SMALL_INDEX),
)


def reference_interleave(traces, quantum):
    """The original cursor-loop round-robin schedule, kept as an oracle."""
    address_parts, context_parts = [], []
    cursors = [0] * len(traces)
    remaining = sum(len(trace) for trace in traces)
    while remaining > 0:
        for index, trace in enumerate(traces):
            start = cursors[index]
            if start >= len(trace):
                continue
            stop = min(start + quantum, len(trace))
            address_parts.append(trace.addresses[start:stop])
            context_parts.append(np.full(stop - start, index))
            cursors[index] = stop
            remaining -= stop - start
    if not address_parts:
        return np.empty(0, dtype=np.uint32), np.empty(0, dtype=np.int64)
    return np.concatenate(address_parts), np.concatenate(context_parts)


def trace_of_pages(pages, name="t"):
    return Trace(
        np.array(pages, dtype=np.uint32) * PAGE_4KB,
        name=name,
        refs_per_instruction=1.25,
    )


class TestMultiprogrammedTLB:
    def test_flush_policy_empties_on_switch(self):
        tlb = MultiprogrammedTLB(FullyAssociativeTLB(8), ContextSwitchPolicy.FLUSH)
        tlb.access_single(1)
        tlb.switch_to(1)
        assert not tlb.access_single(1)  # flushed
        assert tlb.switches == 1

    def test_asid_policy_keeps_entries_across_switches(self):
        tlb = MultiprogrammedTLB(FullyAssociativeTLB(8), ContextSwitchPolicy.ASID)
        tlb.access_single(1)
        tlb.switch_to(1)
        tlb.access_single(99)
        tlb.switch_to(0)
        assert tlb.access_single(1)  # survived both switches

    def test_asid_distinguishes_same_virtual_page(self):
        # Two contexts touching page 5 must not share an entry.
        tlb = MultiprogrammedTLB(FullyAssociativeTLB(8), ContextSwitchPolicy.ASID)
        assert not tlb.access_single(5)
        tlb.switch_to(1)
        assert not tlb.access_single(5)
        tlb.switch_to(0)
        assert tlb.access_single(5)

    def test_switch_to_same_asid_is_free(self):
        tlb = MultiprogrammedTLB(FullyAssociativeTLB(8), ContextSwitchPolicy.FLUSH)
        tlb.access_single(1)
        tlb.switch_to(0)
        assert tlb.switches == 0
        assert tlb.access_single(1)

    def test_negative_asid_rejected(self):
        tlb = MultiprogrammedTLB(FullyAssociativeTLB(8), ContextSwitchPolicy.ASID)
        with pytest.raises(ConfigurationError):
            tlb.switch_to(-1)

    def test_two_page_sizes_under_asid(self):
        tlb = MultiprogrammedTLB(FullyAssociativeTLB(8), ContextSwitchPolicy.ASID)
        tlb.access(40, 5, large=True)
        tlb.switch_to(1)
        assert not tlb.access(40, 5, large=True)
        tlb.switch_to(0)
        assert tlb.access(47, 5, large=True)


class TestInterleaveWithContexts:
    def test_contexts_follow_schedule(self):
        left = trace_of_pages([1, 2, 3, 4], name="L")
        right = trace_of_pages([9, 8], name="R")
        mixed, contexts = interleave_with_contexts([left, right], quantum=2)
        assert len(mixed) == 6
        assert contexts.tolist() == [0, 0, 1, 1, 0, 0]
        # Addresses are preserved, not offset.
        assert mixed.addresses[2] == 9 * PAGE_4KB

    def test_rejects_empty(self):
        with pytest.raises(TraceError):
            interleave_with_contexts([])

    def test_rejects_bad_quantum(self):
        with pytest.raises(TraceError):
            interleave_with_contexts([trace_of_pages([1])], quantum=0)


class TestRunMultiprogrammed:
    def make_traces(self):
        rng = np.random.default_rng(7)
        return [
            trace_of_pages(rng.integers(0, 12, size=5000), name=f"p{i}")
            for i in range(3)
        ]

    def test_asid_beats_flush(self):
        traces = self.make_traces()
        config = TLBConfig(32)
        flush = run_multiprogrammed(
            traces, config, quantum=500,
            switch_policy=ContextSwitchPolicy.FLUSH,
        )
        asid = run_multiprogrammed(
            traces, config, quantum=500,
            switch_policy=ContextSwitchPolicy.ASID,
        )
        assert flush.switches == asid.switches > 0
        assert asid.misses <= flush.misses

    def test_flush_misses_grow_as_quantum_shrinks(self):
        traces = self.make_traces()
        config = TLBConfig(32)
        short = run_multiprogrammed(
            traces, config, quantum=100,
            switch_policy=ContextSwitchPolicy.FLUSH,
        )
        long = run_multiprogrammed(
            traces, config, quantum=2500,
            switch_policy=ContextSwitchPolicy.FLUSH,
        )
        assert short.misses > long.misses

    def test_result_metrics(self):
        traces = self.make_traces()
        result = run_multiprogrammed(traces, TLBConfig(16), quantum=1000)
        assert result.references == 15_000
        assert result.cpi_tlb == pytest.approx(
            result.misses / (15_000 / 1.25) * 20.0
        )
        assert result.program_names == ("p0", "p1", "p2")

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            run_multiprogrammed([], TLBConfig(16))


class TestMixerEdgeCases:
    def test_all_empty_traces_yield_empty_mix(self):
        empties = [trace_of_pages([], name="a"), trace_of_pages([], name="b")]
        mixed, contexts = interleave_with_contexts(empties, quantum=5)
        assert len(mixed) == 0
        assert contexts.size == 0
        assert len(round_robin_mix(empties, quantum=5)) == 0

    def test_one_empty_trace_among_several(self):
        traces = [
            trace_of_pages([1, 2, 3], name="full"),
            trace_of_pages([], name="empty"),
            trace_of_pages([7, 8], name="tail"),
        ]
        mixed, contexts = interleave_with_contexts(traces, quantum=2)
        # The empty trace is never scheduled; the others interleave.
        assert contexts.tolist() == [0, 0, 2, 2, 0]
        assert (mixed.addresses // PAGE_4KB).tolist() == [1, 2, 7, 8, 3]

    def test_quantum_larger_than_every_trace(self):
        traces = [
            trace_of_pages([1, 2], name="a"),
            trace_of_pages([5], name="b"),
        ]
        mixed, contexts = interleave_with_contexts(traces, quantum=100)
        # One round: plain concatenation in input order.
        assert contexts.tolist() == [0, 0, 1]
        assert (mixed.addresses // PAGE_4KB).tolist() == [1, 2, 5]

    def test_unequal_lengths_match_reference_schedule(self):
        rng = np.random.default_rng(11)
        for trial in range(20):
            lengths = rng.integers(0, 60, size=rng.integers(1, 5))
            quantum = int(rng.integers(1, 70))
            traces = [
                trace_of_pages(
                    rng.integers(0, 50, size=length), name=f"t{index}"
                )
                for index, length in enumerate(lengths)
            ]
            mixed, contexts = interleave_with_contexts(
                traces, quantum=quantum
            )
            expected_addresses, expected_contexts = reference_interleave(
                traces, quantum
            )
            assert np.array_equal(mixed.addresses, expected_addresses)
            assert np.array_equal(contexts, expected_contexts)

    def test_round_robin_mix_offsets_by_context(self):
        traces = [
            trace_of_pages([1, 2, 3], name="a"),
            trace_of_pages([9], name="b"),
        ]
        stride = 1 << 28
        mixed = round_robin_mix(traces, quantum=2, context_stride=stride)
        expected = [
            1 * PAGE_4KB,
            2 * PAGE_4KB,
            9 * PAGE_4KB + stride,
            3 * PAGE_4KB,
        ]
        assert mixed.addresses.tolist() == expected

    def test_mix_rpi_aggregates_all_programs(self):
        traces = [
            trace_of_pages([1, 2, 3, 4], name="a"),
            trace_of_pages([5, 6], name="b"),
        ]
        mixed, _ = interleave_with_contexts(traces, quantum=3)
        assert mixed.refs_per_instruction == pytest.approx(1.25)


class TestSwitchCounting:
    def test_initial_context_nonzero_counts_a_switch(self):
        # The TLB starts in address space 0, so a mix whose first
        # reference is context 1 pays a switch before it runs.
        assert count_switches([1, 1, 0, 0]) == 2
        tlb = MultiprogrammedTLB(FullyAssociativeTLB(8), ContextSwitchPolicy.ASID)
        tlb.switch_to(1)
        assert tlb.switches == 1

    def test_initial_context_zero_is_free(self):
        assert count_switches([0, 0, 1, 1, 0]) == 2

    def test_empty_context_stream(self):
        assert count_switches([]) == 0

    def test_matches_scalar_driver(self):
        rng = np.random.default_rng(3)
        traces = [
            trace_of_pages(rng.integers(0, 9, size=40), name=f"p{i}")
            for i in range(3)
        ]
        _, contexts = interleave_with_contexts(traces, quantum=7)
        result = run_multiprogrammed(
            traces, TLBConfig(16), quantum=7, kernel="scalar"
        )
        assert result.switches == count_switches(contexts)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "scheme", [IndexingScheme.EXACT_INDEX, IndexingScheme.LARGE_INDEX]
    )
    def test_two_size_indexed_config_rejected(self, scheme):
        # access_single passes chunk=page, so a two-size indexing rule
        # would compute set bits from a bogus chunk number.
        traces = [trace_of_pages([1, 2, 3])]
        config = TLBConfig(16, associativity=2, scheme=scheme)
        with pytest.raises(ConfigurationError, match="single-page-size"):
            run_multiprogrammed(traces, config)

    def test_small_index_and_fa_accepted(self):
        traces = [trace_of_pages([1, 2, 3])]
        small = TLBConfig(
            16, associativity=2, scheme=IndexingScheme.SMALL_INDEX
        )
        run_multiprogrammed(traces, small)
        # Fully associative shapes never index, whatever the scheme says.
        run_multiprogrammed(traces, TLBConfig(16))


class TestVectorEquivalence:
    def fuzzed_mixes(self):
        rng = np.random.default_rng(29)
        for trial in range(4):
            footprint = int(rng.integers(8, 120))
            traces = [
                trace_of_pages(
                    rng.integers(0, footprint, size=int(rng.integers(0, 1500))),
                    name=f"p{i}",
                )
                for i in range(int(rng.integers(2, 4)))
            ]
            quantum = int(rng.integers(1, 900))
            yield traces, quantum

    def test_bit_exact_against_scalar_oracle(self):
        for traces, quantum in self.fuzzed_mixes():
            for policy in ContextSwitchPolicy:
                for config in GEOMETRIES:
                    kwargs = dict(quantum=quantum, switch_policy=policy)
                    scalar = run_multiprogrammed(
                        traces, config, kernel="scalar", **kwargs
                    )
                    vector = run_multiprogrammed(
                        traces, config, kernel="vector", **kwargs
                    )
                    assert vector.misses == scalar.misses
                    assert vector.switches == scalar.switches
                    assert vector.cpi_tlb == scalar.cpi_tlb
                    assert vector.references == scalar.references

    def test_vector_requires_lru(self):
        traces = [trace_of_pages([1, 2, 3])]
        config = TLBConfig(16, replacement="fifo")
        with pytest.raises(ConfigurationError):
            run_multiprogrammed(traces, config, kernel="vector")
        # "auto" falls back to the scalar oracle — loudly, with the
        # resolution recorded on the result.
        with pytest.warns(KernelFallbackWarning):
            auto = run_multiprogrammed(traces, config, kernel="auto")
        scalar = run_multiprogrammed(traces, config, kernel="scalar")
        assert auto == scalar  # audit fields excluded from equality
        assert auto.resolved_kernel == "scalar"
        assert auto.fallback_reason

    def test_kernel_rejects_mismatched_streams(self):
        with pytest.raises(ConfigurationError):
            multiprog_counts(
                [1, 2, 3], [0, 0], ContextSwitchPolicy.FLUSH, [TLBConfig(16)]
            )

    def test_kernel_rejects_asid_fold_overflow(self):
        with pytest.raises(ConfigurationError, match="ASID fold"):
            multiprog_counts(
                [1 << 26], [0], ContextSwitchPolicy.ASID, [TLBConfig(16)]
            )


class TestSweepMultiprogrammed:
    def make_traces(self):
        rng = np.random.default_rng(17)
        return [
            trace_of_pages(rng.integers(0, 40, size=1200), name=f"p{i}")
            for i in range(3)
        ]

    def grid_kwargs(self):
        return dict(quanta=(150, 700), policies=tuple(ContextSwitchPolicy))

    def test_grid_matches_individual_runs(self):
        traces = self.make_traces()
        configs = (TLBConfig(16), TLBConfig(32))
        grid = sweep_multiprogrammed(traces, configs, **self.grid_kwargs())
        assert len(grid) == 2 * 2 * 2
        for (policy_value, quantum, label), result in grid.items():
            config = next(c for c in configs if c.label == label)
            solo = run_multiprogrammed(
                traces,
                config,
                quantum=quantum,
                switch_policy=ContextSwitchPolicy(policy_value),
            )
            assert solo.to_payload() == result.to_payload()

    @pytest.mark.parallel
    def test_parallel_grid_matches_serial(self):
        traces = self.make_traces()
        configs = (TLBConfig(16), TLBConfig(32))
        serial = sweep_multiprogrammed(traces, configs, **self.grid_kwargs())
        parallel = sweep_multiprogrammed(
            traces, configs, jobs=2, **self.grid_kwargs()
        )
        assert {k: v.to_payload() for k, v in serial.items()} == {
            k: v.to_payload() for k, v in parallel.items()
        }

    def test_results_flow_through_cache(self, tmp_path):
        traces = self.make_traces()
        configs = (TLBConfig(16),)
        cache = SimulationCache.open(tmp_path)
        first = sweep_multiprogrammed(
            traces, configs, cache=cache, **self.grid_kwargs()
        )
        assert cache.stats.stores == len(first)
        second = sweep_multiprogrammed(
            traces, configs, cache=cache, **self.grid_kwargs()
        )
        assert cache.stats.hits == len(first)
        assert {k: v.to_payload() for k, v in first.items()} == {
            k: v.to_payload() for k, v in second.items()
        }
        # A single run shares the grid's cache entries.
        run_multiprogrammed(
            traces,
            configs[0],
            quantum=150,
            switch_policy=ContextSwitchPolicy.FLUSH,
            cache=cache,
        )
        assert cache.stats.hits == len(first) + 1

    def test_empty_grid_axes_rejected(self):
        traces = self.make_traces()
        with pytest.raises(ConfigurationError):
            sweep_multiprogrammed(traces, ())
        with pytest.raises(ConfigurationError):
            sweep_multiprogrammed(traces, (TLBConfig(16),), quanta=())
        with pytest.raises(ConfigurationError):
            sweep_multiprogrammed(traces, (TLBConfig(16),), policies=())
