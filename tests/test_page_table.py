"""Tests for the two-page-size page table and miss-penalty model."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.mem import (
    MissPenaltyModel,
    TwoPageSizePageTable,
    single_size_penalty,
    two_size_penalty,
)
from repro.tlb import TLBStatistics
from repro.types import PAGE_4KB, PAGE_32KB, PAIR_4KB_32KB


class TestMapping:
    def test_small_mapping_walk(self):
        table = TwoPageSizePageTable()
        table.map_small(5, 7 * PAGE_4KB)
        translation = table.walk(5 * PAGE_4KB + 0x123)
        assert translation.frame_base == 7 * PAGE_4KB
        assert translation.page_size == PAGE_4KB
        assert translation.memory_touches == 2  # directory + leaf

    def test_large_mapping_walk(self):
        table = TwoPageSizePageTable()
        table.map_large(3, 9 * PAGE_32KB)
        translation = table.walk(3 * PAGE_32KB + 0x4567)
        assert translation.frame_base == 9 * PAGE_32KB
        assert translation.page_size == PAGE_32KB
        # Failed small walk (1 touch: directory absent) + large table.
        assert translation.memory_touches == 2

    def test_small_walk_tried_first(self):
        table = TwoPageSizePageTable()
        table.map_small(0, 0)
        translation = table.walk(0x10)
        assert translation.page_size == PAGE_4KB

    def test_unmapped_address(self):
        table = TwoPageSizePageTable()
        assert table.walk(0x123456) is None

    def test_unmap_small(self):
        table = TwoPageSizePageTable()
        table.map_small(5, PAGE_4KB)
        assert table.unmap_small(5) == PAGE_4KB
        assert table.walk(5 * PAGE_4KB) is None
        assert table.unmap_small(5) is None

    def test_unmap_large(self):
        table = TwoPageSizePageTable()
        table.map_large(2, PAGE_32KB)
        assert table.unmap_large(2) == PAGE_32KB
        assert table.walk(2 * PAGE_32KB) is None

    def test_mapping_counts(self):
        table = TwoPageSizePageTable()
        table.map_small(1, 0)
        table.map_small(2, PAGE_4KB)
        table.map_large(9, PAGE_32KB)
        assert table.small_mapping_count() == 2
        assert table.large_mapping_count() == 1

    def test_lookup_helpers(self):
        table = TwoPageSizePageTable()
        table.map_small(1, 0)
        table.map_large(9, PAGE_32KB)
        assert table.lookup_small(1) == 0
        assert table.lookup_small(2) is None
        assert table.lookup_large(9) == PAGE_32KB
        assert table.large_covers_block(9 * 8 + 3)
        assert not table.large_covers_block(8 * 8)


class TestInvariants:
    def test_large_over_small_rejected(self):
        table = TwoPageSizePageTable()
        table.map_small(8, 0)  # block 8 belongs to chunk 1
        with pytest.raises(SimulationError):
            table.map_large(1, PAGE_32KB)

    def test_small_under_large_rejected(self):
        table = TwoPageSizePageTable()
        table.map_large(1, PAGE_32KB)
        with pytest.raises(SimulationError):
            table.map_small(8, 0)

    def test_unaligned_frames_rejected(self):
        table = TwoPageSizePageTable()
        with pytest.raises(ConfigurationError):
            table.map_small(1, 0x123)
        with pytest.raises(ConfigurationError):
            table.map_large(1, PAGE_4KB)  # 4KB-aligned is not 32KB-aligned

    def test_promotion_sequence(self):
        # The legal promotion order: unmap smalls, then map large.
        table = TwoPageSizePageTable(PAIR_4KB_32KB)
        for block in range(8, 16):
            table.map_small(block, block * PAGE_4KB)
        for block in range(8, 16):
            table.unmap_small(block)
        table.map_large(1, PAGE_32KB)
        assert table.walk(PAGE_32KB).page_size == PAGE_32KB

    def test_deep_directory_split(self):
        # Blocks far apart live in different leaf tables.
        table = TwoPageSizePageTable()
        table.map_small(0, 0)
        table.map_small(1 << 19, PAGE_4KB)
        assert table.lookup_small(0) == 0
        assert table.lookup_small(1 << 19) == PAGE_4KB
        table.unmap_small(0)
        assert table.lookup_small(1 << 19) == PAGE_4KB


class TestMissPenalty:
    def test_paper_constants(self):
        assert single_size_penalty().miss_cycles == 20.0
        assert two_size_penalty().miss_cycles == 25.0

    def test_total_cycles(self):
        stats = TLBStatistics(misses=10, reprobes=4)
        model = MissPenaltyModel(
            miss_cycles=20, reprobe_cycles=1, promotion_cycles=100
        )
        assert model.total_cycles(stats, promotions=2) == 10 * 20 + 4 + 200

    def test_negative_cycles_rejected(self):
        with pytest.raises(ConfigurationError):
            MissPenaltyModel(miss_cycles=-1)

    def test_cheaper_two_size_rejected(self):
        with pytest.raises(ConfigurationError):
            two_size_penalty(factor=0.8)
