"""Tests for the page-fault (weighted LRU paging) simulation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mem import (
    fault_rate_curve,
    single_size_paging,
    two_size_paging,
)
from repro.stacksim import lru_miss_curve
from repro.trace import Trace
from repro.types import KB, MB, PAGE_4KB, PAGE_32KB, PAIR_4KB_32KB
from repro.workloads import generate_trace


def page_trace(pages, name="t"):
    return Trace(np.array(pages, dtype=np.uint32) * PAGE_4KB, name=name)


class TestSingleSizePaging:
    def test_matches_stack_simulation(self):
        # With one page size, weighted LRU is classic LRU paging: the
        # fault count at M bytes equals the miss count at M/page frames.
        rng = np.random.default_rng(3)
        trace = page_trace(rng.integers(0, 50, size=5000))
        pages = (trace.addresses >> 12)
        curve = lru_miss_curve(pages, max_capacity=64)
        for frames in (4, 8, 16, 32):
            result = single_size_paging(trace, PAGE_4KB, frames * PAGE_4KB)
            assert result.faults == curve.misses(frames), frames

    def test_everything_fits(self):
        trace = page_trace([1, 2, 3] * 100)
        result = single_size_paging(trace, PAGE_4KB, MB)
        assert result.faults == 3  # cold faults only
        assert result.bytes_paged_in == 3 * PAGE_4KB

    def test_thrash_when_loop_exceeds_memory(self):
        trace = page_trace(list(range(5)) * 50)
        result = single_size_paging(trace, PAGE_4KB, 4 * PAGE_4KB)
        assert result.faults == len(trace)  # classic LRU loop thrash

    def test_fault_ratio(self):
        trace = page_trace([1] * 10)
        result = single_size_paging(trace, PAGE_4KB, MB)
        assert result.fault_ratio == pytest.approx(0.1)

    def test_memory_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            single_size_paging(page_trace([1]), PAGE_4KB, 1024)

    def test_curve_monotone_in_memory(self):
        trace = generate_trace("li", 40_000, seed=0)
        curve = fault_rate_curve(
            trace, PAGE_4KB, [64 * KB, 256 * KB, MB, 4 * MB]
        )
        rates = [curve[m].fault_ratio for m in (64 * KB, 256 * KB, MB, 4 * MB)]
        assert rates == sorted(rates, reverse=True)

    def test_empty_memory_list_rejected(self):
        with pytest.raises(ConfigurationError):
            fault_rate_curve(page_trace([1]), PAGE_4KB, [])


class TestTwoSizePaging:
    def test_reduces_to_small_pages_when_nothing_promotes(self):
        # One block per chunk: the policy never promotes, so two-size
        # paging equals 4KB paging exactly.
        rng = np.random.default_rng(5)
        addresses = (
            rng.integers(0, 64, size=3000).astype(np.uint32) * PAGE_32KB
        )
        trace = Trace(addresses, name="sparse")
        memory = 24 * PAGE_4KB
        two = two_size_paging(trace, PAIR_4KB_32KB, window=500, memory_bytes=memory)
        small = single_size_paging(trace, PAGE_4KB, memory)
        assert two.faults == small.faults
        assert two.bytes_paged_in == small.bytes_paged_in

    def test_promotion_pages_in_whole_chunks(self):
        # A dense loop promotes its chunk: paged-in bytes approach the
        # chunk size even though only half the blocks were ever touched
        # before promotion.
        addresses = np.tile(
            np.arange(4, dtype=np.uint32) * PAGE_4KB, 300
        )
        trace = Trace(addresses, name="dense")
        result = two_size_paging(
            trace, PAIR_4KB_32KB, window=64, memory_bytes=MB
        )
        assert result.bytes_paged_in >= PAGE_32KB

    def test_under_memory_pressure_two_size_faults_more(self):
        # The paper's warning made concrete: with memory sized to the
        # 4KB working set, the inflated two-size working set faults more
        # for a program whose chunks promote at half occupancy.
        rng = np.random.default_rng(9)
        # 64 chunks, 4 hot blocks each: all promote, doubling the bytes.
        chunk = rng.integers(0, 64, size=30_000).astype(np.uint32)
        block = rng.integers(0, 4, size=30_000).astype(np.uint32)
        trace = Trace(chunk * PAGE_32KB + block * PAGE_4KB, name="half")
        memory = 64 * 4 * PAGE_4KB  # exactly the 4KB working set
        small = single_size_paging(trace, PAGE_4KB, memory)
        two = two_size_paging(
            trace, PAIR_4KB_32KB, window=10_000, memory_bytes=memory
        )
        assert two.faults > small.faults

    def test_memory_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            two_size_paging(page_trace([1]), PAIR_4KB_32KB, 10, 16 * KB)


class TestPagingProperties:
    """Hypothesis checks on the weighted-LRU core."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=40), max_size=300),
        st.integers(min_value=1, max_value=32),
    )
    def test_single_size_equals_stack_counts(self, pages, frames):
        trace = page_trace(pages) if pages else page_trace([0])[:0]
        if not pages:
            return
        result = single_size_paging(trace, PAGE_4KB, frames * PAGE_4KB)
        curve = lru_miss_curve(pages, max_capacity=64)
        assert result.faults == curve.misses(min(frames, 64))

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=40), max_size=300))
    def test_more_memory_never_faults_more(self, pages):
        if not pages:
            return
        trace = page_trace(pages)
        small = single_size_paging(trace, PAGE_4KB, 4 * PAGE_4KB)
        big = single_size_paging(trace, PAGE_4KB, 32 * PAGE_4KB)
        assert big.faults <= small.faults

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=60), max_size=300))
    def test_two_size_faults_at_least_distinct_pages(self, blocks):
        if not blocks:
            return
        trace = page_trace(blocks)
        result = two_size_paging(
            trace, PAIR_4KB_32KB, window=20, memory_bytes=MB
        )
        # At generous memory, faults equal distinct resident objects
        # (>= 1 per distinct chunk ever touched).
        distinct_chunks = len({b // 8 for b in blocks})
        assert result.faults >= distinct_chunks
        assert result.faults <= len(blocks)
