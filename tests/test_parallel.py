"""The multi-process experiment engine (marker: ``parallel``).

The contract under test is *equivalence*: a parallel run must produce
the same results, the same journal records in the same order, and the
same published outputs as a serial run — only the wall clock may
differ.  Plus the failure story: a worker that dies mid-unit fails only
that unit, and a journal written under ``jobs=4`` resumes serially.
"""

import json
import os
from dataclasses import dataclass

import numpy as np
import pytest

from repro.errors import ParallelError
from repro.parallel.pool import (
    fork_available,
    in_worker,
    parallel_map,
    resolve_jobs,
)
from repro.parallel.scheduler import (
    AffinityRouter,
    topological_order,
    transitive_dependents,
    validate_units,
)
from repro.robustness.executor import UnitSpec, run_units
from repro.robustness.journal import RunJournal
from repro.robustness.retry import RetryPolicy
from repro.sim.config import TLBConfig
from repro.sim.sweep import sweep_single_size
from repro.trace.trace_io import (
    attach_shared_trace,
    share_trace,
)
from repro.workloads.registry import generate_trace

pytestmark = [
    pytest.mark.parallel,
    pytest.mark.skipif(not fork_available(), reason="needs fork"),
]


def _spec(name, value, needs=(), affinity=None):
    """A deterministic unit: squares its value (picklable result)."""
    return UnitSpec(
        name=name,
        run=lambda v=value: v * v,
        needs=tuple(needs),
        affinity=affinity,
    )


def _journal_units(path):
    """Unit names in on-disk record order (not the replayed dict)."""
    names = []
    with open(path, encoding="utf-8") as stream:
        for line in stream:
            record = json.loads(line)
            if record.get("type") == "unit":
                names.append(record["unit"])
    return names


class TestScheduler:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ParallelError, match="duplicate"):
            validate_units([_spec("a", 1), _spec("a", 2)])

    def test_unknown_dependency_rejected(self):
        with pytest.raises(ParallelError, match="unknown"):
            validate_units([_spec("a", 1, needs=("ghost",))])

    def test_self_dependency_rejected(self):
        with pytest.raises(ParallelError, match="itself"):
            validate_units([_spec("a", 1, needs=("a",))])

    def test_dependency_after_dependent_rejected(self):
        with pytest.raises(ParallelError, match="listed after"):
            validate_units([_spec("a", 1, needs=("b",)), _spec("b", 2)])

    def test_topological_order_is_stable(self):
        units = [
            _spec("a", 1),
            _spec("b", 2, needs=("a",)),
            _spec("c", 3),
            _spec("d", 4, needs=("b", "c")),
        ]
        # Already dependency-consistent: spec order comes back verbatim.
        assert topological_order(units) == [0, 1, 2, 3]

    def test_transitive_dependents(self):
        units = [
            _spec("a", 1),
            _spec("b", 2, needs=("a",)),
            _spec("c", 3, needs=("b",)),
            _spec("d", 4),
        ]
        assert transitive_dependents(units, "a") == {"b", "c"}

    def test_affinity_router_is_sticky(self):
        router = AffinityRouter()
        grouped = _spec("a", 1, affinity="g")
        assert router.pick_worker(grouped, [2, 0, 1]) == 2
        # Bound worker busy: the unit waits even though others are idle.
        assert router.pick_worker(_spec("b", 2, affinity="g"), [0, 1]) is None
        assert router.pick_worker(_spec("c", 3, affinity="g"), [1, 2]) == 2
        # No affinity: least-loaded idle worker, no waiting.
        assert router.pick_worker(_spec("d", 4), [0, 1]) == 0
        router.forget_worker(2)
        assert router.pick_worker(_spec("e", 5, affinity="g"), [1]) == 1


class TestPool:
    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) == (os.cpu_count() or 1)
        with pytest.raises(ParallelError):
            resolve_jobs(-1)

    def test_parallel_map_preserves_order(self):
        thunks = [lambda i=i: i * 10 for i in range(7)]
        assert parallel_map(thunks, jobs=2) == [i * 10 for i in range(7)]
        assert parallel_map(thunks, jobs=None) == [i * 10 for i in range(7)]

    def test_parallel_map_raises_lowest_indexed_error(self):
        def boom():
            raise ValueError("boom")

        thunks = [lambda: 1, boom, lambda: 3]
        with pytest.raises(Exception, match="boom") as info:
            parallel_map(thunks, jobs=2)
        assert type(info.value).__name__ == "ValueError"

    def test_no_nested_parallelism(self):
        assert not in_worker()
        # Inside a worker, any jobs request resolves to serial.
        assert parallel_map([lambda: resolve_jobs(4)] * 2, jobs=2) == [1, 1]
        assert parallel_map([in_worker] * 2, jobs=2) == [True, True]


class TestSharedTraces:
    def test_round_trip_and_attach_cache(self):
        trace = generate_trace("li", 3000, seed=11)
        handle = share_trace(trace)
        # Idempotent per content: same fingerprint, same segment.
        assert share_trace(trace).shm_name == handle.shm_name
        attached = attach_shared_trace(handle)
        assert attached is attach_shared_trace(handle)  # per-process cache
        assert attached.name == trace.name
        assert attached.fingerprint == trace.fingerprint
        np.testing.assert_array_equal(attached.addresses, trace.addresses)
        np.testing.assert_array_equal(attached.kinds, trace.kinds)

    def test_worker_reads_shared_trace(self):
        trace = generate_trace("espresso", 3000, seed=5)
        handle = share_trace(trace)
        sums = parallel_map(
            [lambda: int(attach_shared_trace(handle).addresses.sum())] * 2,
            jobs=2,
        )
        assert sums == [int(trace.addresses.sum())] * 2


class TestRunUnitsEquivalence:
    def _run(self, tmp_path, tag, jobs, fail=(), flaky=(), batch_size=None):
        published = []
        outdir = tmp_path / tag
        outdir.mkdir()
        attempts_left = {name: 1 for name in flaky}

        def make(name, value):
            def task(v=value, _name=name):
                if _name in fail:
                    raise RuntimeError(f"{_name} exploded")
                if attempts_left.get(_name, 0) > 0:
                    attempts_left[_name] -= 1
                    raise RuntimeError(f"{_name} hiccup")
                return v * v

            return UnitSpec(name=name, run=task)

        units = [make(f"u{i}", i) for i in range(5)]

        def publish(spec, result, elapsed):
            published.append((spec.name, result))
            (outdir / f"{spec.name}.txt").write_text(f"{spec.name}={result}\n")

        journal = RunJournal(tmp_path / f"{tag}.jsonl", fingerprint={"s": 1})
        report = run_units(
            units,
            journal=journal,
            retry_policy=RetryPolicy(max_attempts=2, base_delay=0.0),
            on_success=publish,
            journal_payload=lambda spec, result: {"value": result},
            jobs=jobs,
            batch_size=batch_size,
        )
        files = {
            path.name: path.read_text() for path in sorted(outdir.iterdir())
        }
        return report, published, files, journal

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_identical_to_serial(self, tmp_path, jobs):
        serial = self._run(tmp_path, "serial", None, flaky={"u2"})
        parallel = self._run(tmp_path, f"jobs{jobs}", jobs, flaky={"u2"})
        # Same published results in the same (spec) order...
        assert parallel[1] == serial[1]
        # ... same output files byte for byte ...
        assert parallel[2] == serial[2]
        # ... same journal records in the same on-disk order ...
        assert _journal_units(tmp_path / f"jobs{jobs}.jsonl") == _journal_units(
            tmp_path / "serial.jsonl"
        )
        # ... and the same statuses, attempts and payloads per unit.
        for ours, theirs in zip(parallel[0].outcomes, serial[0].outcomes):
            assert (ours.name, ours.status, ours.attempts) == (
                theirs.name,
                theirs.status,
                theirs.attempts,
            )
        assert parallel[3].get("u2").payload == {"value": 4}
        assert parallel[0].outcomes[2].attempts == 2  # the flaky unit

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    @pytest.mark.parametrize("batch", [1, 4, 16])
    def test_batched_identical_to_serial(self, tmp_path, jobs, batch):
        # Batching is a dispatch optimization, never a semantic one: any
        # (batch size, worker count) cell must be byte-identical to the
        # serial run — published order, files, journal order, statuses.
        serial = self._run(tmp_path, "serial", None, flaky={"u2"})
        tag = f"j{jobs}b{batch}"
        batched = self._run(
            tmp_path, tag, jobs, flaky={"u2"}, batch_size=batch
        )
        assert batched[1] == serial[1]
        assert batched[2] == serial[2]
        assert _journal_units(tmp_path / f"{tag}.jsonl") == _journal_units(
            tmp_path / "serial.jsonl"
        )
        assert [
            (o.name, o.status, o.attempts) for o in batched[0].outcomes
        ] == [(o.name, o.status, o.attempts) for o in serial[0].outcomes]

    def test_failure_isolated_and_exit_one(self, tmp_path):
        report, published, _files, journal = self._run(
            tmp_path, "fail", 2, fail={"u1"}
        )
        assert report.exit_code == 1
        statuses = {o.name: o.status for o in report.outcomes}
        assert statuses == {
            "u0": "ok", "u1": "failed", "u2": "ok", "u3": "ok", "u4": "ok"
        }
        assert [name for name, _ in published] == ["u0", "u2", "u3", "u4"]
        record = journal.get("u1")
        assert not record.succeeded and "exploded" in record.error

    def test_affinity_groups_share_a_worker(self):
        units = [
            UnitSpec(name=f"g{i}", run=os.getpid, affinity="same")
            for i in range(4)
        ]
        report = run_units(units, jobs=2)
        pids = {outcome.result for outcome in report.outcomes}
        assert len(pids) == 1 and os.getpid() not in pids

    def test_failed_dependency_fails_dependent(self, tmp_path):
        def boom():
            raise RuntimeError("root failed")

        units = [
            UnitSpec(name="root", run=boom),
            UnitSpec(name="leaf", run=lambda: 1, needs=("root",)),
            UnitSpec(name="free", run=lambda: 2),
        ]
        for jobs in (None, 2):
            report = run_units(
                units,
                retry_policy=RetryPolicy(max_attempts=1, base_delay=0.0),
                jobs=jobs,
            )
            statuses = {o.name: o.status for o in report.outcomes}
            assert statuses == {
                "root": "failed", "leaf": "failed", "free": "ok"
            }
            leaf = next(o for o in report.outcomes if o.name == "leaf")
            assert "dependency" in leaf.error


class TestWorkerCrash:
    def test_dead_worker_fails_only_its_unit(self, tmp_path):
        units = [
            UnitSpec(name="ok1", run=lambda: 1),
            UnitSpec(name="doomed", run=lambda: os._exit(3)),
            UnitSpec(name="ok2", run=lambda: 2),
            UnitSpec(name="ok3", run=lambda: 3),
        ]
        journal = RunJournal(tmp_path / "crash.jsonl", fingerprint={"s": 1})
        report = run_units(
            units,
            journal=journal,
            retry_policy=RetryPolicy(max_attempts=1, base_delay=0.0),
            jobs=2,
        )
        assert report.exit_code == 1
        statuses = {o.name: o.status for o in report.outcomes}
        assert statuses == {
            "ok1": "ok", "doomed": "failed", "ok2": "ok", "ok3": "ok"
        }
        doomed = next(o for o in report.outcomes if o.name == "doomed")
        assert "WorkerCrashError" in doomed.error
        assert "exited with code 3" in doomed.error
        # The crash is journaled like any other failure.
        assert not journal.get("doomed").succeeded


class TestBatchedDispatch:
    def test_batch_interior_failure_isolated(self, tmp_path):
        # One bad unit inside a 4-unit batch fails alone; its batch
        # siblings complete normally on the same dispatch.
        def make(name, value, broken=False):
            def task(v=value, b=broken):
                if b:
                    raise RuntimeError("mid-batch failure")
                return v * v

            return UnitSpec(name=name, run=task)

        units = [make(f"u{i}", i, broken=(i == 1)) for i in range(8)]
        report = run_units(
            units,
            retry_policy=RetryPolicy(max_attempts=1, base_delay=0.0),
            jobs=2,
            batch_size=4,
        )
        assert report.exit_code == 1
        statuses = {o.name: o.status for o in report.outcomes}
        assert statuses == {
            f"u{i}": ("failed" if i == 1 else "ok") for i in range(8)
        }
        failed = next(o for o in report.outcomes if o.name == "u1")
        assert "mid-batch failure" in failed.error

    def test_timing_breakdown_present(self, tmp_path):
        units = [_spec(f"t{i}", i) for i in range(4)]
        report = run_units(units, jobs=2, batch_size=2)
        assert report.ok
        assert report.timing is not None
        per_unit = report.timing["units"]
        assert set(per_unit) == {f"t{i}" for i in range(4)}
        keys = {
            "dispatch_s", "queue_wait_s", "run_s",
            "result_transfer_s", "flush_s",
        }
        for breakdown in per_unit.values():
            assert set(breakdown) == keys
            assert all(value >= 0.0 for value in breakdown.values())
        assert set(report.timing["totals"]) == keys

    def test_serial_run_has_no_timing(self):
        report = run_units([_spec("s0", 1)], jobs=None)
        assert report.ok and report.timing is None


def _worker_pid():
    return os.getpid()


def _big_payload():
    return {
        "addresses": np.arange(200_000, dtype=np.uint64),
        "count": 200_000,
    }


class TestPersistentPool:
    def test_worker_processes_reused_across_runs(self):
        # Consecutive run_units calls at the same worker count must land
        # on the same worker processes — the fork cost is paid once per
        # pool, not once per call.
        def units(prefix):
            return [
                UnitSpec(name=f"{prefix}{i}", run=_worker_pid)
                for i in range(4)
            ]

        first = run_units(units("a"), jobs=2)
        second = run_units(units("b"), jobs=2)
        assert first.ok and second.ok
        first_pids = {o.result for o in first.outcomes}
        second_pids = {o.result for o in second.outcomes}
        assert os.getpid() not in first_pids
        assert first_pids == second_pids

    def test_large_result_round_trips_through_shared_memory(self):
        # A >1MB numpy payload crosses back via a shared-memory segment
        # (the pipe carries only a descriptor) and must arrive intact.
        expected = _big_payload()
        report = run_units(
            [UnitSpec(name="big", run=_big_payload)], jobs=2
        )
        assert report.ok
        result = report.outcomes[0].result
        assert result["count"] == expected["count"]
        np.testing.assert_array_equal(
            result["addresses"], expected["addresses"]
        )


class TestShmResults:
    def test_small_results_stay_on_the_pipe(self):
        from repro.parallel import shm_results

        blob, descriptor = shm_results.encode_result({"x": 1, "y": [2, 3]})
        assert descriptor is None
        assert shm_results.decode_result(blob, None) == {"x": 1, "y": [2, 3]}

    def test_large_arrays_diverted_and_restored(self):
        from repro.parallel import shm_results

        payload = {
            "a": np.arange(100_000, dtype=np.uint64),
            "b": np.ones(50_000, dtype=np.float64),
            "small": np.arange(4, dtype=np.uint8),  # under the threshold
            "plain": "metadata",
        }
        blob, descriptor = shm_results.encode_result(payload)
        assert descriptor is not None
        assert len(descriptor.arrays) == 2  # only the big ones diverted
        assert len(blob) < payload["a"].nbytes  # pipe carries no bulk data
        decoded = shm_results.decode_result(blob, descriptor)
        np.testing.assert_array_equal(decoded["a"], payload["a"])
        np.testing.assert_array_equal(decoded["b"], payload["b"])
        np.testing.assert_array_equal(decoded["small"], payload["small"])
        assert decoded["plain"] == "metadata"

    def test_corrupt_segment_is_a_structured_failure(self):
        from multiprocessing import shared_memory

        from repro.parallel import shm_results

        blob, descriptor = shm_results.encode_result(
            np.arange(100_000, dtype=np.uint64)
        )
        assert descriptor is not None
        segment = shared_memory.SharedMemory(name=descriptor.shm_name)
        try:
            segment.buf[0] = segment.buf[0] ^ 0xFF
        finally:
            segment.close()
        with pytest.raises(ParallelError, match="CRC"):
            shm_results.decode_result(blob, descriptor)

    def test_discard_is_idempotent(self):
        from repro.parallel import shm_results

        _blob, descriptor = shm_results.encode_result(
            np.arange(100_000, dtype=np.uint64)
        )
        shm_results.discard_result(descriptor)
        shm_results.discard_result(descriptor)  # already unlinked: no-op
        shm_results.discard_result(None)


class TestResumeAcrossModes:
    def test_serial_resume_from_parallel_journal(self, tmp_path):
        path = tmp_path / "resume.jsonl"
        calls = []

        def make(name, broken):
            def task(_name=name):
                calls.append(_name)
                if broken:
                    raise RuntimeError(f"{_name} broken")
                return _name.upper()

            return UnitSpec(name=name, run=task)

        first = [make("a", False), make("b", True), make("c", False),
                 make("d", False)]
        journal = RunJournal(path, fingerprint={"s": 1})
        report = run_units(
            first,
            journal=journal,
            retry_policy=RetryPolicy(max_attempts=1, base_delay=0.0),
            jobs=4,
        )
        assert report.exit_code == 1
        # Journal records land in spec order even under jobs=4.
        assert _journal_units(path) == ["a", "b", "c", "d"]

        # Second run: serial, resumed, with the broken unit repaired.
        calls.clear()
        second = [make("a", False), make("b", False), make("c", False),
                  make("d", False)]
        journal = RunJournal(path, fingerprint={"s": 1})
        report = run_units(
            second, journal=journal, resume=True, jobs=None
        )
        assert report.exit_code == 0
        statuses = [(o.name, o.status) for o in report.outcomes]
        assert statuses == [
            ("a", "skipped"), ("b", "ok"), ("c", "skipped"), ("d", "skipped")
        ]
        # Only the repaired unit actually ran again... in the parent.
        assert calls == ["b"]


class TestSweepParallel:
    CONFIGS = (
        TLBConfig(entries=16, associativity=2),
        TLBConfig(entries=8),  # fully associative: its own pass family
    )

    def test_jobs_two_matches_serial(self, tmp_path):
        trace = generate_trace("li", 6000, seed=3)
        serial_journal = RunJournal(tmp_path / "s.jsonl", fingerprint={"s": 1})
        parallel_journal = RunJournal(
            tmp_path / "p.jsonl", fingerprint={"s": 1}
        )
        serial = sweep_single_size(
            trace, (4096, 8192), self.CONFIGS, journal=serial_journal
        )
        parallel = sweep_single_size(
            trace,
            (4096, 8192),
            self.CONFIGS,
            journal=parallel_journal,
            jobs=2,
        )
        assert serial.keys() == parallel.keys()
        for key in serial:
            assert serial[key].to_payload() == parallel[key].to_payload()
        assert _journal_units(tmp_path / "s.jsonl") == _journal_units(
            tmp_path / "p.jsonl"
        )


@dataclass
class FakeArtifact:
    """Minimal experiment result (module-level: workers pickle it back)."""

    text: str

    def render(self):
        return self.text


def _fake_alpha(scale):
    return FakeArtifact(f"alpha@{scale.trace_length}")


def _fake_beta(scale):
    return FakeArtifact(f"beta@{scale.window}")


class TestRunnerJobs:
    def test_cli_jobs_matches_serial(self, tmp_path, monkeypatch, capsys):
        from repro.experiments import runner

        monkeypatch.setattr(
            runner, "EXPERIMENTS", {"alpha": _fake_alpha, "beta": _fake_beta}
        )
        serial_dir, parallel_dir = tmp_path / "serial", tmp_path / "jobs2"
        assert runner.main(["--results-dir", str(serial_dir)]) == 0
        serial_out = capsys.readouterr().out
        assert (
            runner.main(["--results-dir", str(parallel_dir), "--jobs", "2"])
            == 0
        )
        parallel_out = capsys.readouterr().out

        def stable(text):
            # Drop the wall-clock suffix lines ("[name: 1.2s]").
            return [
                line
                for line in text.splitlines()
                if not (line.startswith("[") and line.endswith("s]"))
            ]

        assert stable(parallel_out) == stable(serial_out)
        assert {p.name: p.read_text() for p in parallel_dir.iterdir()} == {
            p.name: p.read_text() for p in serial_dir.iterdir()
        }
