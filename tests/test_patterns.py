"""Tests for the access-pattern streams."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.types import KB, MB, PAGE_4KB, PAGE_32KB
from repro.workloads import (
    DenseZipf,
    HotSpot,
    LockstepSweep,
    PhaseAlternator,
    PointerChase,
    Region,
    SequentialRuns,
    SequentialSweep,
    SparseHot,
    StridedSweep,
)


def rng():
    return np.random.default_rng(42)


class TestRegion:
    def test_bounds(self):
        region = Region(0x1000, 0x2000)
        assert region.end == 0x3000
        assert region.contains(0x1000)
        assert region.contains(0x2FFF)
        assert not region.contains(0x3000)

    def test_sub_region(self):
        region = Region(0x1000, 0x2000)
        sub = region.sub(0x800, 0x100)
        assert sub.base == 0x1800
        with pytest.raises(WorkloadError):
            region.sub(0x1F00, 0x200)

    def test_invalid_regions(self):
        with pytest.raises(WorkloadError):
            Region(0, 0)
        with pytest.raises(WorkloadError):
            Region(-4, 16)
        with pytest.raises(WorkloadError):
            Region((1 << 32) - 8, 16)


class TestSequentialSweep:
    def test_advances_by_stride(self):
        sweep = SequentialSweep(Region(0x1000, 64), stride=8)
        assert sweep.take(4).tolist() == [0x1000, 0x1008, 0x1010, 0x1018]

    def test_state_persists_across_takes(self):
        sweep = SequentialSweep(Region(0x1000, 64), stride=8)
        sweep.take(2)
        assert sweep.take(1).tolist() == [0x1010]

    def test_wraps_at_region_end(self):
        sweep = SequentialSweep(Region(0x1000, 16), stride=8)
        assert sweep.take(3).tolist() == [0x1000, 0x1008, 0x1000]

    def test_stays_in_region(self):
        region = Region(2 * MB, 100 * KB)
        sweep = SequentialSweep(region, stride=24)
        addresses = sweep.take(100_000)
        assert addresses.min() >= region.base
        assert addresses.max() < region.end

    def test_covers_every_page(self):
        region = Region(0, 64 * KB)
        sweep = SequentialSweep(region, stride=64)
        pages = set((sweep.take(2000) // PAGE_4KB).tolist())
        assert pages == set(range(16))


class TestStridedSweep:
    def test_touches_new_page_almost_every_reference(self):
        # A 2400-byte stride crosses a 4KB page boundary most steps.
        region = Region(4 * MB, 768 * KB)
        sweep = StridedSweep(region, stride=2400, element=8)
        addresses = sweep.take(1000)
        pages = addresses // PAGE_4KB
        transitions = int((pages[1:] != pages[:-1]).sum())
        assert transitions > 500

    def test_visits_all_columns_eventually(self):
        region = Region(0, 4 * KB)
        sweep = StridedSweep(region, stride=1024, element=256)
        addresses = sweep.take(16)
        # 4 rows x 4 columns, column-major order.
        assert len(set(addresses.tolist())) == 16

    def test_stays_in_region(self):
        region = Region(8 * MB, 500 * KB)
        sweep = StridedSweep(region, stride=2048, element=8)
        addresses = sweep.take(50_000)
        assert addresses.min() >= region.base
        assert addresses.max() < region.end

    def test_bad_geometry_rejected(self):
        with pytest.raises(WorkloadError):
            StridedSweep(Region(0, 1024), stride=2048)
        with pytest.raises(WorkloadError):
            StridedSweep(Region(0, 1024), stride=0)


class TestLockstepSweep:
    def test_round_robin_at_shared_index(self):
        regions = [Region(0x10000, 64), Region(0x20000, 64)]
        sweep = LockstepSweep(regions, element=8)
        assert sweep.take(4).tolist() == [0x10000, 0x20000, 0x10008, 0x20008]

    def test_chunk_congruence_with_paper_spacing(self):
        # The tomcatv layout: bases 516KB apart keep chunk numbers
        # congruent mod 8 while block numbers take distinct phases.
        regions = [Region(16 * MB + i * 516 * KB, 416 * KB) for i in range(7)]
        chunks = [r.base // PAGE_32KB for r in regions]
        blocks = [r.base // PAGE_4KB for r in regions]
        assert len({c % 8 for c in chunks}) == 1
        assert len({b % 8 for b in blocks}) == 7

    def test_wraps_all_regions_together(self):
        regions = [Region(0, 16), Region(0x1000, 16)]
        sweep = LockstepSweep(regions, element=8)
        addresses = sweep.take(8).tolist()
        assert addresses == [0, 0x1000, 8, 0x1008, 0, 0x1000, 8, 0x1008]

    def test_needs_regions(self):
        with pytest.raises(WorkloadError):
            LockstepSweep([])


class TestRandomStreams:
    def test_hotspot_stays_in_region(self):
        region = Region(2 * MB, 16 * KB)
        stream = HotSpot(region, rng())
        addresses = stream.take(10_000)
        assert addresses.min() >= region.base
        assert addresses.max() < region.end

    def test_sparse_hot_one_block_per_chunk(self):
        region = Region(4 * MB, 2 * MB)
        stream = SparseHot(region, rng(), hot_blocks=50, chunk_fill=1)
        addresses = stream.take(20_000)
        chunks = addresses // PAGE_32KB
        blocks = addresses // PAGE_4KB
        # Every chunk contributes at most one distinct block.
        by_chunk = {}
        for chunk, block in zip(chunks.tolist(), blocks.tolist()):
            by_chunk.setdefault(chunk, set()).add(block)
        assert all(len(blocks_seen) == 1 for blocks_seen in by_chunk.values())

    def test_sparse_hot_chunk_fill_bounds_density(self):
        region = Region(4 * MB, 4 * MB)
        stream = SparseHot(region, rng(), hot_blocks=60, chunk_fill=3)
        addresses = stream.take(40_000)
        by_chunk = {}
        for address in addresses.tolist():
            by_chunk.setdefault(address // PAGE_32KB, set()).add(
                address // PAGE_4KB
            )
        densities = [len(blocks_seen) for blocks_seen in by_chunk.values()]
        assert max(densities) == 3  # never reaches the promote threshold

    def test_sparse_hot_requires_room(self):
        with pytest.raises(WorkloadError):
            SparseHot(Region(0, 64 * KB), rng(), hot_blocks=50, chunk_fill=1)

    def test_sparse_hot_rejects_promotable_fill(self):
        with pytest.raises(WorkloadError):
            SparseHot(Region(0, MB), rng(), hot_blocks=8, chunk_fill=4)

    def test_dense_zipf_concentrates_on_low_pages(self):
        region = Region(0, MB)
        stream = DenseZipf(region, rng(), hot_pages=64, alpha=1.2)
        addresses = stream.take(50_000)
        pages = addresses // PAGE_4KB
        # Rank 0 must dominate rank 32 under a Zipf law.
        counts = np.bincount(pages, minlength=64)
        assert counts[0] > 5 * counts[32]
        assert pages.max() < 64

    def test_dense_zipf_fills_chunks(self):
        region = Region(0, MB)
        stream = DenseZipf(region, rng(), hot_pages=64, alpha=0.5)
        addresses = stream.take(50_000)
        chunk0_blocks = set(
            (addresses[addresses < PAGE_32KB] // PAGE_4KB).tolist()
        )
        assert len(chunk0_blocks) == 8  # the whole first chunk is warm

    def test_pointer_chase_wanders_locally(self):
        region = Region(0, 4 * MB)
        stream = PointerChase(region, rng(), mean_jump=64, alignment=8)
        addresses = stream.take(1000)
        steps = np.abs(np.diff(addresses.astype(np.int64)))
        # Wrapping produces a few huge apparent steps; the median step is
        # the locality signal.
        assert np.median(steps) < 8 * KB

    def test_pointer_chase_stays_in_region(self):
        region = Region(MB, 256 * KB)
        stream = PointerChase(region, rng(), mean_jump=512)
        addresses = stream.take(20_000)
        assert addresses.min() >= region.base
        assert addresses.max() < region.end


class TestSequentialRuns:
    def test_runs_are_sequential(self):
        region = Region(0x10000, 64 * KB)
        stream = SequentialRuns(region, rng(), run_length=16)
        addresses = stream.take(16)
        deltas = np.diff(addresses.astype(np.int64))
        assert (deltas == 4).sum() >= 14  # one run, word-by-word

    def test_branches_to_new_pages(self):
        region = Region(0x10000, 64 * KB)
        stream = SequentialRuns(region, rng(), run_length=8)
        addresses = stream.take(5000)
        pages = set((addresses // PAGE_4KB).tolist())
        assert len(pages) > 4  # visits a good share of the code pages

    def test_stays_in_region(self):
        region = Region(0x10000, 8 * KB)
        stream = SequentialRuns(region, rng(), run_length=64)
        addresses = stream.take(10_000)
        assert addresses.min() >= region.base
        assert addresses.max() < region.end


class TestPhaseAlternator:
    def test_switches_streams_each_phase(self):
        one = SequentialSweep(Region(0, 1024), stride=8)
        two = SequentialSweep(Region(MB, 1024), stride=8)
        phases = PhaseAlternator([one, two], phase_length=3)
        addresses = phases.take(9)
        assert (addresses[:3] < 1024).all()
        assert (addresses[3:6] >= MB).all()
        assert (addresses[6:9] < 1024).all()

    def test_phase_boundary_spans_takes(self):
        one = SequentialSweep(Region(0, 1024), stride=8)
        two = SequentialSweep(Region(MB, 1024), stride=8)
        phases = PhaseAlternator([one, two], phase_length=4)
        first = phases.take(3)
        second = phases.take(3)
        assert (first < 1024).all()
        assert second[0] < 1024
        assert (second[1:] >= MB).all()

    def test_zero_take(self):
        phases = PhaseAlternator(
            [SequentialSweep(Region(0, 64), stride=8)], phase_length=2
        )
        assert phases.take(0).size == 0
