"""Scalar/vector kernel equivalence: the vector kernels must be exact.

Every vectorized hot path keeps its scalar implementation as a
reference oracle behind the ``kernel=`` switch; these tests assert
bit-identical results — miss counts, full miss curves, promotion and
demotion sequences, working-set sizes — on tier-1 workload traces and
adversarial synthetic streams.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.perf.kernels import (
    KERNEL_SCALAR,
    KERNEL_VECTOR,
    _count_greater_preceding,
    previous_occurrences,
    resolve_kernel,
    stack_depths,
    window_events,
)
from repro.policy.dynamic_ws import dynamic_average_working_set
from repro.policy.promotion import (
    DynamicPromotionPolicy,
    ExplicitAssignmentPolicy,
    StaticLargePolicy,
    StaticSmallPolicy,
)
from repro.policy.vector import policy_decisions, supports_vector_decisions
from repro.policy.window import SlidingBlockWindow
from repro.perf.twosize import _event_plan
from repro.sim.config import SingleSizeScheme, TLBConfig, TwoSizeScheme
from repro.sim.driver import (
    run_single_size,
    run_split_two_sizes,
    run_two_sizes,
    run_with_policy,
)
from repro.stacksim.lru_stack import lru_miss_curve, per_set_miss_curve
from repro.tlb.indexing import IndexingScheme, ProbeStrategy
from repro.trace.record import Trace
from repro.types import PAIR_4KB_32KB
from repro.workloads.registry import generate_trace

#: Tier-1 workloads used for equivalence runs (one small, one large WS).
WORKLOADS = ("espresso", "matrix300")
LENGTH = 12_000


@pytest.fixture(scope="module", params=WORKLOADS)
def trace(request):
    return generate_trace(request.param, LENGTH, seed=1)


def _random_trace(seed, n=6_000, footprint_bits=22):
    rng = np.random.default_rng(seed)
    addrs = rng.integers(0, 1 << footprint_bits, size=n).astype(np.uint32)
    addrs[: n // 3] = np.sort(addrs[: n // 3])  # a sequential phase
    return Trace(addrs, name=f"rand{seed}")


def _curves_equal(a, b):
    return (
        np.array_equal(a.depth_hits, b.depth_hits)
        and a.cold_misses == b.cold_misses
        and a.beyond_misses == b.beyond_misses
        and a.total_references == b.total_references
    )


class TestKernelResolution:
    def test_auto_prefers_vector(self):
        assert resolve_kernel("auto") == KERNEL_VECTOR

    def test_auto_falls_back_when_unsupported(self):
        assert resolve_kernel("auto", vector_supported=False) == KERNEL_SCALAR

    def test_explicit_vector_unsupported_raises(self):
        with pytest.raises(ConfigurationError):
            resolve_kernel("vector", vector_supported=False)

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_kernel("simd")


class TestPrimitives:
    def test_previous_occurrences(self):
        keys = np.array([5, 3, 5, 5, 3, 9], dtype=np.int64)
        expected = np.array([-1, -1, 0, 2, 1, -1])
        assert np.array_equal(previous_occurrences(keys), expected)

    def test_dominance_count_matches_brute_force(self):
        rng = np.random.default_rng(0)
        for _ in range(40):
            n = int(rng.integers(2, 300))
            values = rng.permutation(n).astype(np.int64)
            values[rng.random(n) < 0.3] = -1  # cold sentinels may repeat
            got = _count_greater_preceding(values)
            want = np.array(
                [np.sum(values[:i] > values[i]) for i in range(n)]
            )
            live = values != -1
            assert np.array_equal(got[live], want[live])

    def test_window_events_mirror_sliding_window(self):
        rng = np.random.default_rng(4)
        blocks = rng.integers(0, 40, size=3_000).astype(np.int64)
        for window in (1, 7, 100, 2_999, 3_000, 5_000):
            entered, left = window_events(blocks, window)
            sliding = SlidingBlockWindow(PAIR_4KB_32KB, window)
            for i, block in enumerate(blocks.tolist()):
                left_block, entered_block = sliding.access(block)
                assert (entered_block is not None) == entered[i]
                assert (left_block is not None) == left[i]
                if left[i]:
                    assert left_block == blocks[i - window]


class TestStackCurves:
    def test_fully_associative_curve(self, trace):
        pages = trace.addresses >> np.uint32(12)
        scalar = lru_miss_curve(pages, max_capacity=64, kernel="scalar")
        vector = lru_miss_curve(pages, max_capacity=64, kernel="vector")
        assert _curves_equal(scalar, vector)

    def test_per_set_curve(self, trace):
        pages = trace.addresses >> np.uint32(12)
        for sets in (2, 8, 16):
            indices = pages & np.uint32(sets - 1)
            scalar = per_set_miss_curve(
                indices, pages, max_associativity=16, kernel="scalar"
            )
            vector = per_set_miss_curve(
                indices, pages, max_associativity=16, kernel="vector"
            )
            assert _curves_equal(scalar, vector)

    def test_random_streams(self):
        for seed in range(3):
            t = _random_trace(seed)
            pages = t.addresses >> np.uint32(12)
            scalar = lru_miss_curve(pages, max_capacity=32, kernel="scalar")
            vector = lru_miss_curve(pages, max_capacity=32, kernel="vector")
            assert _curves_equal(scalar, vector)

    def test_misses_interface(self):
        keys = np.array([1, 2, 3, 1, 2, 3, 4, 1], dtype=np.int64)
        result = stack_depths(keys)
        curve = lru_miss_curve(keys, max_capacity=8, kernel="scalar")
        for capacity in range(1, 9):
            assert result.misses(capacity) == curve.misses(capacity)


class TestSingleSizeDriver:
    CONFIGS = (
        TLBConfig(entries=16),
        TLBConfig(entries=64),
        TLBConfig(entries=32, associativity=2),
        TLBConfig(
            entries=32,
            associativity=2,
            probe_strategy=ProbeStrategy.SEQUENTIAL,
        ),
        TLBConfig(entries=32, associativity=2, scheme=IndexingScheme.SMALL_INDEX),
        TLBConfig(entries=32, associativity=2, scheme=IndexingScheme.LARGE_INDEX),
        TLBConfig(entries=64, associativity=4),
    )

    def test_equivalence_across_geometries(self, trace):
        for page_size in (4096, 32768):
            scheme = SingleSizeScheme(page_size)
            for config in self.CONFIGS:
                scalar = run_single_size(trace, scheme, config, kernel="scalar")
                vector = run_single_size(trace, scheme, config, kernel="vector")
                assert scalar == vector, config.label

    def test_non_lru_auto_resolves_sampled(self, trace):
        config = TLBConfig(entries=16, replacement="random")
        result = run_single_size(
            trace, SingleSizeScheme(4096), config, kernel="auto"
        )
        assert result.misses > 0
        assert result.resolved_kernel == "sampled"
        assert result.sampling is not None

    def test_non_lru_explicit_vector_raises(self, trace):
        config = TLBConfig(entries=16, replacement="fifo")
        with pytest.raises(ConfigurationError):
            run_single_size(trace, SingleSizeScheme(4096), config, kernel="vector")


class TestPolicyDecisions:
    def _assert_matches_scalar(self, blocks, window, demote_fraction=None):
        policy = DynamicPromotionPolicy(
            PAIR_4KB_32KB, window, demote_fraction=demote_fraction
        )
        decisions = policy_decisions(policy, blocks)
        for i, block in enumerate(blocks.tolist()):
            decision = policy.access_block(int(block))
            assert decision.large == bool(decisions.large[i]), i
            promoted = -1 if decision.promoted_chunk is None else decision.promoted_chunk
            demoted = -1 if decision.demoted_chunk is None else decision.demoted_chunk
            assert promoted == decisions.promoted[i], i
            assert demoted == decisions.demoted[i], i
        assert policy.promotions == decisions.promotions
        assert policy.demotions == decisions.demotions

    def test_decision_sequence_random(self):
        rng = np.random.default_rng(9)
        for trial in range(6):
            blocks = rng.integers(0, 48, size=2_500).astype(np.int64)
            if trial % 2:
                blocks = np.sort(blocks)
            self._assert_matches_scalar(
                blocks,
                window=int(rng.integers(1, 400)),
                demote_fraction=[None, 0.25, 0.0][trial % 3],
            )

    def test_same_chunk_leave_and_enter_merge(self):
        # A block re-entering exactly as its own chunk's block ages out
        # exercises the policy's read-after-both-events occupancy.
        window = 8
        blocks = np.array([0, 1, 2, 3, 4, 5, 6, 7] * 40, dtype=np.int64)
        self._assert_matches_scalar(blocks, window)

    def test_workload_decision_stream(self):
        trace = generate_trace("espresso", 8_000, seed=2)
        blocks = np.asarray(trace.addresses >> np.uint32(12), dtype=np.int64)
        self._assert_matches_scalar(blocks, window=1_000)

    def test_stale_policy_unsupported(self):
        policy = DynamicPromotionPolicy(PAIR_4KB_32KB, 100)
        assert supports_vector_decisions(policy)
        policy.access_block(3)
        assert not supports_vector_decisions(policy)


class TestPolicyDrivers:
    TLB_CONFIGS = (
        TLBConfig(entries=16),
        TLBConfig(
            entries=32,
            associativity=2,
            probe_strategy=ProbeStrategy.SEQUENTIAL,
        ),
    )

    def test_run_two_sizes_equivalence(self, trace):
        scheme = TwoSizeScheme(window=2_000)
        scalar = run_two_sizes(trace, scheme, list(self.TLB_CONFIGS), kernel="scalar")
        vector = run_two_sizes(trace, scheme, list(self.TLB_CONFIGS), kernel="vector")
        assert scalar == vector

    def test_run_two_sizes_with_transitions(self):
        # A sequential sweep revisiting chunks guarantees promotions and
        # demotions, so shootdown replay is exercised end to end.
        blocks = np.tile(np.repeat(np.arange(64, dtype=np.int64), 8), 12)
        addrs = (blocks << 12).astype(np.uint32)
        t = Trace(addrs, name="seq")
        scheme = TwoSizeScheme(window=64)
        scalar = run_two_sizes(t, scheme, list(self.TLB_CONFIGS), kernel="scalar")
        vector = run_two_sizes(t, scheme, list(self.TLB_CONFIGS), kernel="vector")
        assert scalar == vector
        assert vector[0].promotions > 0
        assert vector[0].demotions > 0
        assert vector[0].invalidations > 0

    def test_static_and_explicit_policies(self, trace):
        makers = (
            lambda: StaticSmallPolicy(PAIR_4KB_32KB),
            lambda: StaticLargePolicy(PAIR_4KB_32KB),
            lambda: ExplicitAssignmentPolicy(PAIR_4KB_32KB, [0, 3, 17]),
        )
        for make in makers:
            scalar = run_with_policy(
                trace, make(), list(self.TLB_CONFIGS), kernel="scalar"
            )
            vector = run_with_policy(
                trace, make(), list(self.TLB_CONFIGS), kernel="vector"
            )
            assert scalar == vector

    def test_stale_policy_vector_raises_auto_falls_back(self, trace):
        policy = DynamicPromotionPolicy(PAIR_4KB_32KB, 500)
        policy.access_block(1)
        with pytest.raises(ConfigurationError):
            run_with_policy(
                trace, policy, [TLBConfig(entries=16)], kernel="vector"
            )
        results = run_with_policy(
            trace, policy, [TLBConfig(entries=16)], kernel="auto"
        )
        assert results[0].references == len(trace)

    def test_vector_run_leaves_policy_untouched(self, trace):
        policy = DynamicPromotionPolicy(PAIR_4KB_32KB, 2_000)
        run_with_policy(trace, policy, [TLBConfig(entries=16)], kernel="vector")
        assert supports_vector_decisions(policy)  # still fresh


#: Every Table 5.1 geometry (16/32-entry two-way, all three indexing
#: schemes, both probe strategies for exact) plus the Figure 5.1 FA TLB.
ALL_GEOMETRIES = (
    TLBConfig(entries=16),
    TLBConfig(entries=32),
    TLBConfig(entries=16, associativity=2, scheme=IndexingScheme.SMALL_INDEX),
    TLBConfig(entries=32, associativity=2, scheme=IndexingScheme.SMALL_INDEX),
    TLBConfig(entries=16, associativity=2, scheme=IndexingScheme.LARGE_INDEX),
    TLBConfig(entries=32, associativity=2, scheme=IndexingScheme.LARGE_INDEX),
    TLBConfig(entries=16, associativity=2, scheme=IndexingScheme.EXACT_INDEX),
    TLBConfig(entries=32, associativity=2, scheme=IndexingScheme.EXACT_INDEX),
    TLBConfig(
        entries=32,
        associativity=2,
        scheme=IndexingScheme.EXACT_INDEX,
        probe_strategy=ProbeStrategy.SEQUENTIAL,
    ),
)


def _dense_random_trace(seed, n=1_500, blocks=32):
    """Addresses over a few chunks: promotion/demotion churn is constant."""
    rng = np.random.default_rng(seed)
    raw = rng.integers(0, blocks, size=n).astype(np.uint32)
    return Trace(raw << np.uint32(12), name=f"dense{seed}")


class TestTwoSizeEpochCorners:
    """ISSUE 4's epoch-boundary corners, asserted present *and* exact.

    Each trace below is checked to actually contain the corner (via the
    decision stream / event plan), then the vector kernel must match the
    scalar TLB walk bit-for-bit at every Table 5.1 geometry.
    """

    WINDOW = 16

    def _decisions(self, t):
        policy = DynamicPromotionPolicy(PAIR_4KB_32KB, self.WINDOW)
        blocks = np.asarray(t.addresses >> np.uint32(12), dtype=np.int64)
        return policy_decisions(policy, blocks), blocks

    def _assert_exact(self, t):
        scheme = TwoSizeScheme(window=self.WINDOW)
        scalar = run_two_sizes(t, scheme, list(ALL_GEOMETRIES), kernel="scalar")
        vector = run_two_sizes(t, scheme, list(ALL_GEOMETRIES), kernel="vector")
        assert scalar == vector
        split_scalar = run_split_two_sizes(
            t, scheme, TLBConfig(12), TLBConfig(4), kernel="scalar"
        )
        split_vector = run_split_two_sizes(
            t, scheme, TLBConfig(12), TLBConfig(4), kernel="vector"
        )
        assert split_scalar == split_vector

    def test_promotion_and_demotion_on_same_reference(self):
        t = _dense_random_trace(16)
        decisions, _ = self._decisions(t)
        both = (decisions.promoted >= 0) & (decisions.demoted >= 0)
        assert np.count_nonzero(both) > 0
        self._assert_exact(t)

    def test_invalidated_page_first_access_of_next_epoch(self):
        # A demoted chunk re-referenced after its shootdown starts the
        # next epoch cold; a promoted chunk's triggering access *is* the
        # first reference after its small pages were invalidated.
        t = _dense_random_trace(17)
        decisions, blocks = self._decisions(t)
        chunks = blocks >> 3
        refs = np.flatnonzero(decisions.demoted >= 0)
        assert refs.size > 0
        re_referenced = any(
            np.any(chunks[ref + 1 :] == decisions.demoted[ref]) for ref in refs
        )
        assert re_referenced
        self._assert_exact(t)

    def test_zero_length_epoch(self):
        # An epoch that ends before any reference lands in it must emit
        # zero tombstones; the event plan records it as an empty slice.
        found = None
        for seed in range(18, 40):
            t = _dense_random_trace(seed)
            decisions, blocks = self._decisions(t)
            plan = _event_plan(blocks >> 3, decisions)
            empty = [
                j
                for j in range(plan.num_events)
                if plan.ended_refs(j).size == 0
            ]
            if empty:
                found = t
                break
        assert found is not None
        self._assert_exact(found)

    def test_fuzzed_streams_all_geometries(self):
        for seed in range(3):
            self._assert_exact(_random_trace(seed, n=4_000))
        for seed in (50, 51):
            self._assert_exact(_dense_random_trace(seed, n=2_000))


class TestSplitDriver:
    def test_workload_equivalence(self, trace):
        scheme = TwoSizeScheme(window=2_000)
        scalar = run_split_two_sizes(
            trace, scheme, TLBConfig(12), TLBConfig(4), kernel="scalar"
        )
        vector = run_split_two_sizes(
            trace, scheme, TLBConfig(12), TLBConfig(4), kernel="vector"
        )
        assert scalar == vector

    def test_set_associative_components(self):
        t = _dense_random_trace(23, n=2_500)
        scheme = TwoSizeScheme(window=64)
        for small, large in (
            (TLBConfig(16, 2), TLBConfig(4)),
            (TLBConfig(8), TLBConfig(4, 2)),
        ):
            scalar = run_split_two_sizes(
                t, scheme, small, large, kernel="scalar"
            )
            vector = run_split_two_sizes(
                t, scheme, small, large, kernel="vector"
            )
            assert scalar == vector
            assert vector.invalidations > 0

    def test_occupancy_matches_tlb_helpers(self):
        # The kernel's end-of-trace occupancies must agree with what the
        # scalar SplitTLB reports through the TLB inspection helpers.
        t = _dense_random_trace(29, n=2_000)
        scheme = TwoSizeScheme(window=32)
        result = run_split_two_sizes(
            t, scheme, TLBConfig(12), TLBConfig(4), kernel="vector"
        )
        oracle = run_split_two_sizes(
            t, scheme, TLBConfig(12), TLBConfig(4), kernel="scalar"
        )
        assert (result.small_occupancy, result.large_occupancy) == (
            oracle.small_occupancy,
            oracle.large_occupancy,
        )

    def test_non_lru_vector_raises_auto_falls_back(self, trace):
        scheme = TwoSizeScheme(window=2_000)
        with pytest.raises(ConfigurationError):
            run_split_two_sizes(
                trace,
                scheme,
                TLBConfig(12, replacement="fifo"),
                TLBConfig(4),
                kernel="vector",
            )
        result = run_split_two_sizes(
            trace,
            scheme,
            TLBConfig(12, replacement="fifo"),
            TLBConfig(4),
            kernel="auto",
        )
        assert result.references == len(trace)


class TestDynamicWorkingSet:
    def test_equivalence(self, trace):
        for window, demote in ((500, None), (2_000, 0.25), (1_000, 0.0)):
            scalar = dynamic_average_working_set(
                trace,
                PAIR_4KB_32KB,
                window,
                demote_fraction=demote,
                kernel="scalar",
            )
            vector = dynamic_average_working_set(
                trace,
                PAIR_4KB_32KB,
                window,
                demote_fraction=demote,
                kernel="vector",
            )
            assert scalar == vector


class TestRNGIsolation:
    def test_traces_ignore_global_numpy_state(self):
        # Benchmark and sweep inputs must be functions of (name, length,
        # seed) alone, never of np.random's global state.
        np.random.seed(1)
        first = generate_trace("espresso", 2_000, seed=5)
        np.random.seed(999)
        np.random.random(97)
        second = generate_trace("espresso", 2_000, seed=5)
        assert np.array_equal(first.addresses, second.addresses)
        assert np.array_equal(first.kinds, second.kinds)
