"""Tests for the buddy physical-frame allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError, ConfigurationError
from repro.mem import BuddyAllocator
from repro.types import KB, MB, PAGE_4KB, PAGE_32KB


class TestBasicAllocation:
    def test_allocates_aligned_blocks(self):
        allocator = BuddyAllocator(MB, PAGE_4KB)
        base = allocator.allocate(PAGE_32KB)
        assert base % PAGE_32KB == 0

    def test_distinct_allocations_do_not_overlap(self):
        allocator = BuddyAllocator(MB, PAGE_4KB)
        blocks = [allocator.allocate(PAGE_4KB) for _ in range(16)]
        assert len(set(blocks)) == 16

    def test_exhaustion_raises(self):
        allocator = BuddyAllocator(64 * KB, PAGE_4KB)
        for _ in range(16):
            allocator.allocate(PAGE_4KB)
        with pytest.raises(AllocationError):
            allocator.allocate(PAGE_4KB)
        assert allocator.try_allocate(PAGE_4KB) is None

    def test_free_enables_reuse(self):
        allocator = BuddyAllocator(64 * KB, PAGE_4KB)
        blocks = [allocator.allocate(PAGE_4KB) for _ in range(16)]
        allocator.free(blocks[3])
        assert allocator.allocate(PAGE_4KB) == blocks[3]

    def test_double_free_rejected(self):
        allocator = BuddyAllocator(MB, PAGE_4KB)
        base = allocator.allocate(PAGE_4KB)
        allocator.free(base)
        with pytest.raises(AllocationError):
            allocator.free(base)

    def test_request_too_large(self):
        allocator = BuddyAllocator(64 * KB, PAGE_4KB)
        with pytest.raises(AllocationError):
            allocator.allocate(128 * KB)

    def test_non_power_of_two_rejected(self):
        allocator = BuddyAllocator(MB, PAGE_4KB)
        with pytest.raises(ConfigurationError):
            allocator.allocate(3 * PAGE_4KB)
        with pytest.raises(ConfigurationError):
            allocator.allocate(0)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            BuddyAllocator(MB + 1, PAGE_4KB)
        with pytest.raises(ConfigurationError):
            BuddyAllocator(PAGE_4KB, MB)

    def test_small_requests_round_up_to_min_block(self):
        allocator = BuddyAllocator(MB, PAGE_4KB)
        allocator.allocate(512)
        assert allocator.allocated_bytes() == PAGE_4KB


class TestCoalescing:
    def test_buddies_coalesce_on_free(self):
        allocator = BuddyAllocator(64 * KB, PAGE_4KB)
        blocks = [allocator.allocate(PAGE_4KB) for _ in range(16)]
        for base in blocks:
            allocator.free(base)
        # Everything freed: one maximal block again.
        assert allocator.largest_free_block() == 64 * KB
        assert allocator.free_bytes() == 64 * KB
        assert allocator.external_fragmentation() == 0.0

    def test_external_fragmentation_blocks_large_pages(self):
        # Allocate all of memory as 4KB frames, then free every other
        # frame: half of memory is free but no 8KB+ block exists.
        allocator = BuddyAllocator(256 * KB, PAGE_4KB)
        blocks = [allocator.allocate(PAGE_4KB) for _ in range(64)]
        for base in blocks[::2]:
            allocator.free(base)
        assert allocator.free_bytes() == 128 * KB
        assert allocator.largest_free_block() == PAGE_4KB
        assert allocator.try_allocate(PAGE_32KB) is None
        assert allocator.external_fragmentation() > 0.9


class TestAccountingInvariants:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.sampled_from([4, 8, 16, 32]), max_size=40))
    def test_free_plus_allocated_is_total(self, sizes_kb):
        allocator = BuddyAllocator(MB, PAGE_4KB)
        live = []
        for size_kb in sizes_kb:
            base = allocator.try_allocate(size_kb * KB)
            if base is not None:
                live.append(base)
            assert allocator.free_bytes() + allocator.allocated_bytes() == MB
        for base in live:
            allocator.free(base)
        assert allocator.free_bytes() == MB

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_no_overlapping_blocks(self, data):
        allocator = BuddyAllocator(256 * KB, PAGE_4KB)
        live = {}
        for _ in range(30):
            if live and data.draw(st.booleans()):
                base = data.draw(st.sampled_from(sorted(live)))
                allocator.free(base)
                del live[base]
            else:
                size = data.draw(st.sampled_from([PAGE_4KB, 8 * KB, PAGE_32KB]))
                base = allocator.try_allocate(size)
                if base is not None:
                    live[base] = size
            intervals = sorted((b, b + s) for b, s in live.items())
            for (_, end), (start, _) in zip(intervals, intervals[1:]):
                assert end <= start
