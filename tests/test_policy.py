"""Tests for the sliding window, promotion policy and dynamic working set."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.policy import (
    DynamicPromotionPolicy,
    ExplicitAssignmentPolicy,
    SlidingBlockWindow,
    StaticLargePolicy,
    StaticSmallPolicy,
    dynamic_average_working_set,
)
from repro.stacksim import average_working_set_bytes
from repro.trace import Trace
from repro.types import PAGE_4KB, PAGE_32KB, PAIR_4KB_32KB


def block_address(chunk, block_in_chunk, pair=PAIR_4KB_32KB):
    """Address of the first byte of a given block within a given chunk."""
    return chunk * pair.large + block_in_chunk * pair.small


class TestSlidingBlockWindow:
    def test_block_enters_once(self):
        window = SlidingBlockWindow(PAIR_4KB_32KB, window=10)
        left, entered = window.access(5)
        assert (left, entered) == (None, 5)
        left, entered = window.access(5)
        assert (left, entered) == (None, None)
        assert window.distinct_blocks() == 1

    def test_block_leaves_after_window_expires(self):
        window = SlidingBlockWindow(PAIR_4KB_32KB, window=3)
        window.access(1)
        window.access(2)
        window.access(3)
        # The fourth access ages out block 1.
        left, entered = window.access(4)
        assert left == 1
        assert entered == 4
        assert not window.block_present(1)

    def test_reuse_keeps_block_alive(self):
        window = SlidingBlockWindow(PAIR_4KB_32KB, window=3)
        window.access(1)
        window.access(2)
        window.access(1)
        # Oldest reference (block 1) ages out but block 1 is still in the
        # window via its second reference.
        left, entered = window.access(3)
        assert left is None
        assert window.block_present(1)

    def test_chunk_occupancy_counts_distinct_blocks(self):
        window = SlidingBlockWindow(PAIR_4KB_32KB, window=100)
        for block_in_chunk in range(5):
            window.access(8 * 3 + block_in_chunk)  # chunk 3
        assert window.chunk_occupancy(3) == 5
        assert window.chunk_occupancy(0) == 0
        assert dict(window.occupied_chunks()) == {3: 5}

    def test_references_seen_saturates(self):
        window = SlidingBlockWindow(PAIR_4KB_32KB, window=4)
        for i in range(10):
            window.access(i)
        assert window.references_seen() == 4

    def test_bad_window_rejected(self):
        with pytest.raises(ConfigurationError):
            SlidingBlockWindow(PAIR_4KB_32KB, window=0)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=200),
        st.integers(min_value=1, max_value=50),
    )
    def test_matches_naive_window(self, blocks, window_size):
        window = SlidingBlockWindow(PAIR_4KB_32KB, window=window_size)
        for position, block in enumerate(blocks):
            window.access(block)
            expected = set(blocks[max(0, position - window_size + 1) : position + 1])
            assert window.distinct_blocks() == len(expected)
            for candidate in range(16):
                assert window.block_present(candidate) == (candidate in expected)


class TestDynamicPromotionPolicy:
    def test_promotes_at_half_occupancy(self):
        policy = DynamicPromotionPolicy(PAIR_4KB_32KB, window=1000)
        assert policy.promote_blocks == 4
        decisions = [
            policy.access(block_address(0, block)) for block in range(4)
        ]
        # First three references stay small; the fourth reaches the
        # threshold and promotes chunk 0.
        assert [d.large for d in decisions] == [False, False, False, True]
        assert decisions[3].promoted_chunk == 0
        assert policy.promotions == 1
        assert policy.is_promoted(0)

    def test_small_page_numbers_are_block_numbers(self):
        policy = DynamicPromotionPolicy(PAIR_4KB_32KB, window=1000)
        decision = policy.access(block_address(2, 5) + 100)
        assert not decision.large
        assert decision.page == 2 * 8 + 5

    def test_large_page_numbers_are_chunk_numbers(self):
        policy = DynamicPromotionPolicy(PAIR_4KB_32KB, window=1000)
        for block in range(4):
            policy.access(block_address(7, block))
        decision = policy.access(block_address(7, 6))
        assert decision.large
        assert decision.page == 7

    def test_demotes_when_usage_ages_out(self):
        policy = DynamicPromotionPolicy(PAIR_4KB_32KB, window=8)
        for block in range(4):
            policy.access(block_address(1, block))
        assert policy.is_promoted(1)
        # Fill the window with another chunk; chunk 1's blocks age out.
        demoted = []
        for i in range(8):
            decision = policy.access(block_address(9, i % 8))
            if decision.demoted_chunk is not None:
                demoted.append(decision.demoted_chunk)
        assert demoted == [1]
        assert not policy.is_promoted(1)
        assert policy.demotions == 1

    def test_one_block_never_promotes(self):
        policy = DynamicPromotionPolicy(PAIR_4KB_32KB, window=100)
        for _ in range(50):
            decision = policy.access(block_address(3, 0))
            assert not decision.large
        assert policy.promotions == 0

    def test_hysteresis_delays_demotion(self):
        eager = DynamicPromotionPolicy(PAIR_4KB_32KB, window=8)
        sticky = DynamicPromotionPolicy(
            PAIR_4KB_32KB, window=8, demote_fraction=0.125
        )
        for policy in (eager, sticky):
            for block in range(4):
                policy.access(block_address(1, block))
        # Push three of chunk 1's blocks out of both windows.
        for policy in (eager, sticky):
            for i in range(7):
                policy.access(block_address(9, i))
            policy.access(block_address(1, 0))
        assert not eager.is_promoted(1)
        assert sticky.is_promoted(1)

    def test_reset_clears_state(self):
        policy = DynamicPromotionPolicy(PAIR_4KB_32KB, window=100)
        for block in range(4):
            policy.access(block_address(0, block))
        policy.reset()
        assert policy.promotions == 0
        assert not policy.is_promoted(0)
        assert not policy.access(block_address(0, 7)).large

    def test_bad_fractions_rejected(self):
        with pytest.raises(ConfigurationError):
            DynamicPromotionPolicy(PAIR_4KB_32KB, window=10, promote_fraction=0)
        with pytest.raises(ConfigurationError):
            DynamicPromotionPolicy(
                PAIR_4KB_32KB, window=10, promote_fraction=0.5, demote_fraction=0.9
            )


class TestStaticPolicies:
    def test_static_small(self):
        policy = StaticSmallPolicy(PAIR_4KB_32KB)
        decision = policy.access(block_address(4, 3))
        assert not decision.large
        assert decision.page == 4 * 8 + 3

    def test_static_large(self):
        policy = StaticLargePolicy(PAIR_4KB_32KB)
        decision = policy.access(block_address(4, 3))
        assert decision.large
        assert decision.page == 4

    def test_explicit_assignment(self):
        policy = ExplicitAssignmentPolicy(PAIR_4KB_32KB, large_chunks={2})
        assert policy.access(block_address(2, 1)).large
        assert not policy.access(block_address(3, 1)).large


class TestDynamicWorkingSet:
    def test_dense_chunk_counts_one_large_page(self):
        # Cycle over all 8 blocks of one chunk: promoted almost instantly,
        # steady-state working set = one 32KB page.
        addresses = np.tile(
            np.arange(8, dtype=np.uint32) * PAGE_4KB, 200
        )
        result = dynamic_average_working_set(
            Trace(addresses), PAIR_4KB_32KB, window=64
        )
        assert result.promotions >= 1
        assert result.average_bytes == pytest.approx(PAGE_32KB, rel=0.05)

    def test_sparse_chunks_stay_small(self):
        # One block per chunk: never promoted, working set = small pages.
        addresses = np.tile(np.arange(16, dtype=np.uint32) * PAGE_32KB, 50)
        result = dynamic_average_working_set(
            Trace(addresses), PAIR_4KB_32KB, window=16
        )
        assert result.promotions == 0
        assert result.average_bytes <= 16 * PAGE_4KB

    def test_at_most_doubles_small_page_working_set(self):
        # The paper's bound: promotion at half occupancy at worst doubles
        # the 4KB working set, instantaneously and hence on average.
        rng = np.random.default_rng(23)
        addresses = (rng.integers(0, 1 << 20, size=5000)).astype(np.uint32)
        trace = Trace(addresses)
        window = 500
        small_ws = average_working_set_bytes(trace, PAGE_4KB, [window])[window]
        result = dynamic_average_working_set(trace, PAIR_4KB_32KB, window)
        assert result.average_bytes <= 2 * small_ws + 1e-9

    def test_bounded_between_small_and_large_single_sizes(self):
        rng = np.random.default_rng(29)
        # Clustered addresses so some chunks promote and some stay small.
        base = rng.integers(0, 32, size=4000) * PAGE_32KB
        offsets = rng.integers(0, PAGE_32KB, size=4000)
        trace = Trace((base + offsets).astype(np.uint32))
        window = 600
        small_ws = average_working_set_bytes(trace, PAGE_4KB, [window])[window]
        large_ws = average_working_set_bytes(trace, PAGE_32KB, [window])[window]
        result = dynamic_average_working_set(trace, PAIR_4KB_32KB, window)
        assert small_ws - 1e-9 <= result.average_bytes <= large_ws + 1e-9

    def test_matches_brute_force_definition(self):
        rng = np.random.default_rng(31)
        addresses = (rng.integers(0, 8 * PAGE_32KB, size=400)).astype(np.uint32)
        trace = Trace(addresses)
        window = 37
        pair = PAIR_4KB_32KB
        result = dynamic_average_working_set(trace, pair, window)

        # Brute force: for each position, recompute window contents, chunk
        # occupancy, promotion status (pure function of the window), and
        # the resulting working-set size in bytes.
        blocks = [int(a) >> pair.small_shift for a in addresses]
        total = 0
        for position in range(len(blocks)):
            window_blocks = set(
                blocks[max(0, position - window + 1) : position + 1]
            )
            by_chunk = {}
            for block in window_blocks:
                by_chunk.setdefault(block // 8, set()).add(block)
            size = 0
            for chunk_blocks in by_chunk.values():
                if len(chunk_blocks) >= 4:
                    size += pair.large
                else:
                    size += pair.small * len(chunk_blocks)
            total += size
        expected = total / len(blocks)
        assert result.average_bytes == pytest.approx(expected)

    def test_empty_trace(self):
        result = dynamic_average_working_set(Trace([]), PAIR_4KB_32KB, 10)
        assert result.average_bytes == 0.0
        assert result.peak_bytes == 0

    def test_peak_at_least_average(self):
        addresses = np.tile(np.arange(64, dtype=np.uint32) * PAGE_4KB, 10)
        result = dynamic_average_working_set(
            Trace(addresses), PAIR_4KB_32KB, window=100
        )
        assert result.peak_bytes >= result.average_bytes
