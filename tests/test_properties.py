"""Hypothesis property tests: cross-model equivalences and invariants.

Each property here relates two independently implemented components, so
a bug in either implementation breaks the test even when both "look
right" in isolation — the highest-leverage tests in the suite.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policy import DynamicPromotionPolicy
from repro.stacksim import (
    average_working_set_pages,
    forward_reference_gaps,
    lru_miss_curve,
)
from repro.tlb import (
    FullyAssociativeTLB,
    IndexingScheme,
    ProbeStrategy,
    SetAssociativeTLB,
    SplitTLB,
    decode_tag,
    encode_tag,
)
from repro.types import PAIR_4KB_32KB

# A "two-size access" is (block, large?): the chunk is block // 8.
two_size_accesses = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=63), st.booleans()
    ),
    max_size=250,
)

block_streams = st.lists(
    st.integers(min_value=0, max_value=63), min_size=1, max_size=300
)


def drive(tlb, accesses):
    """Feed (block, large) pairs to a TLB; return the hit/miss pattern."""
    pattern = []
    for block, large in accesses:
        pattern.append(tlb.access(block, block // 8, large))
    return pattern


class TestModelEquivalences:
    @settings(max_examples=50, deadline=None)
    @given(two_size_accesses)
    def test_fully_assoc_equals_one_set_sa(self, accesses):
        # A set-associative TLB with a single set must behave exactly
        # like the fully associative model, for every indexing scheme
        # (with one set, the index bits are vacuous).
        for scheme in IndexingScheme:
            sa = SetAssociativeTLB(8, 8, scheme)
            assert drive(sa, accesses) == drive(
                FullyAssociativeTLB(8), accesses
            ), scheme

    @settings(max_examples=50, deadline=None)
    @given(two_size_accesses)
    def test_probe_strategy_does_not_change_hits(self, accesses):
        # Sequential reprobing costs cycles, never correctness.
        parallel = SetAssociativeTLB(
            16, 2, IndexingScheme.EXACT_INDEX,
            probe_strategy=ProbeStrategy.PARALLEL,
        )
        sequential = SetAssociativeTLB(
            16, 2, IndexingScheme.EXACT_INDEX,
            probe_strategy=ProbeStrategy.SEQUENTIAL,
        )
        assert drive(parallel, accesses) == drive(sequential, accesses)
        assert parallel.stats.reprobes == 0
        if accesses:
            assert sequential.stats.reprobes >= sequential.stats.misses

    @settings(max_examples=50, deadline=None)
    @given(two_size_accesses)
    def test_indexing_schemes_agree_on_single_size_streams(self, accesses):
        # With only small pages, SMALL_INDEX and EXACT_INDEX are the
        # same hardware.
        small_only = [(block, False) for block, _ in accesses]
        small_index = SetAssociativeTLB(16, 2, IndexingScheme.SMALL_INDEX)
        exact_index = SetAssociativeTLB(16, 2, IndexingScheme.EXACT_INDEX)
        assert drive(small_index, small_only) == drive(
            exact_index, small_only
        )

    @settings(max_examples=50, deadline=None)
    @given(two_size_accesses)
    def test_split_tlb_equals_independent_halves(self, accesses):
        # A split TLB is literally two independent TLBs.
        split = SplitTLB(FullyAssociativeTLB(8), FullyAssociativeTLB(4))
        small_half = FullyAssociativeTLB(8)
        large_half = FullyAssociativeTLB(4)
        expected = []
        for block, large in accesses:
            if large:
                expected.append(large_half.access_single(block // 8))
            else:
                expected.append(small_half.access_single(block))
        assert drive(split, accesses) == expected

    @settings(max_examples=40, deadline=None)
    @given(block_streams, st.sampled_from([1, 2, 4, 8]))
    def test_tlb_vs_stack_simulation(self, blocks, capacity):
        # Direct model vs Mattson stack classification.
        tlb = FullyAssociativeTLB(capacity)
        misses = sum(0 if tlb.access_single(b) else 1 for b in blocks)
        assert misses == lru_miss_curve(blocks, 8).misses(capacity)


class TestTLBInvariants:
    @settings(max_examples=50, deadline=None)
    @given(two_size_accesses)
    def test_occupancy_never_exceeds_capacity(self, accesses):
        for tlb in (
            FullyAssociativeTLB(4),
            SetAssociativeTLB(8, 2, IndexingScheme.EXACT_INDEX),
            SetAssociativeTLB(8, 2, IndexingScheme.LARGE_INDEX),
        ):
            drive(tlb, accesses)
            assert tlb.occupancy() <= tlb.entries

    @settings(max_examples=50, deadline=None)
    @given(two_size_accesses)
    def test_accounting_identity(self, accesses):
        tlb = SetAssociativeTLB(16, 2)
        drive(tlb, accesses)
        assert tlb.stats.hits + tlb.stats.misses == tlb.stats.accesses
        assert tlb.stats.accesses == len(accesses)

    @settings(max_examples=50, deadline=None)
    @given(two_size_accesses)
    def test_repeat_access_hits(self, accesses):
        # Immediately repeating any access must hit (no replacement can
        # evict the just-filled entry).
        tlb = SetAssociativeTLB(16, 2)
        for block, large in accesses:
            tlb.access(block, block // 8, large)
            assert tlb.access(block, block // 8, large)

    @settings(max_examples=50, deadline=None)
    @given(two_size_accesses, st.integers(min_value=0, max_value=7))
    def test_invalidation_removes_exactly_the_chunk(self, accesses, chunk):
        tlb = FullyAssociativeTLB(16)
        drive(tlb, accesses)
        tlb.invalidate_small_pages_of_chunk(chunk, 8)
        tlb.invalidate_large_page(chunk)
        for page, large in tlb.resident():
            if large:
                assert page != chunk
            else:
                assert page // 8 != chunk

    @given(
        st.integers(min_value=0, max_value=2**26),
        st.booleans(),
    )
    def test_tag_encoding_round_trip(self, page, large):
        assert decode_tag(encode_tag(page, large)) == (page, large)


class TestPolicyInvariants:
    @settings(max_examples=40, deadline=None)
    @given(block_streams, st.integers(min_value=2, max_value=40))
    def test_promoted_iff_occupancy_at_threshold(self, blocks, window):
        # Without hysteresis, promotion status is a pure function of
        # window occupancy.
        policy = DynamicPromotionPolicy(PAIR_4KB_32KB, window)
        for block in blocks:
            policy.access_block(block)
            chunk = block // 8
            assert policy.is_promoted(chunk) == (
                policy.chunk_occupancy(chunk) >= policy.promote_blocks
            )

    @settings(max_examples=40, deadline=None)
    @given(block_streams, st.integers(min_value=2, max_value=40))
    def test_decision_size_matches_promotion_state(self, blocks, window):
        policy = DynamicPromotionPolicy(PAIR_4KB_32KB, window)
        for block in blocks:
            decision = policy.access_block(block)
            assert decision.large == policy.is_promoted(block // 8)
            if decision.large:
                assert decision.page == block // 8
            else:
                assert decision.page == block

    @settings(max_examples=40, deadline=None)
    @given(block_streams, st.integers(min_value=2, max_value=40))
    def test_transition_counters_match_events(self, blocks, window):
        policy = DynamicPromotionPolicy(PAIR_4KB_32KB, window)
        promoted_events = 0
        demoted_events = 0
        for block in blocks:
            decision = policy.access_block(block)
            promoted_events += decision.promoted_chunk is not None
            demoted_events += decision.demoted_chunk is not None
        assert policy.promotions == promoted_events
        assert policy.demotions == demoted_events
        # A chunk can only demote after promoting.
        assert demoted_events <= promoted_events


class TestWorkingSetProperties:
    @settings(max_examples=40, deadline=None)
    @given(block_streams)
    def test_gaps_are_positive_and_bounded(self, blocks):
        gaps = forward_reference_gaps(np.array(blocks))
        assert (gaps >= 1).all()
        assert (gaps <= len(blocks)).all()

    @settings(max_examples=40, deadline=None)
    @given(block_streams)
    def test_ws_monotone_and_bounded(self, blocks):
        curve = average_working_set_pages(
            np.array(blocks), [1, 3, 10, 100, 1000]
        )
        values = [curve[t] for t in (1, 3, 10, 100, 1000)]
        assert values == sorted(values)
        assert values[0] >= 1.0  # at least the current page
        assert values[-1] <= len(set(blocks))

    @settings(max_examples=40, deadline=None)
    @given(block_streams)
    def test_ws_at_window_one_is_exactly_one(self, blocks):
        curve = average_working_set_pages(np.array(blocks), [1])
        assert curve[1] == pytest.approx(1.0)
