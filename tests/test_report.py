"""Tests for the paper-style text table renderer."""

import pytest

from repro.errors import ReproError
from repro.report import TextTable


class TestTextTable:
    def test_basic_rendering(self):
        table = TextTable(["Program", "CPI"], title="Demo")
        table.add_row("li", 0.32)
        table.add_row("espresso", 0.095)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "Program" in lines[1]
        assert "0.320" in text
        assert "0.095" in text

    def test_numeric_columns_right_aligned(self):
        table = TextTable(["Name", "Value"])
        table.add_row("x", 1)
        table.add_row("longer", 12345)
        lines = table.render().splitlines()
        assert lines[-1].endswith("12345")
        assert lines[-2].endswith("    1")

    def test_first_column_left_aligned(self):
        table = TextTable(["Name", "V"])
        table.add_row("ab", 1)
        table.add_row("abcdef", 2)
        lines = table.render().splitlines()
        assert lines[-2].startswith("ab ")

    def test_rule_separates_sections(self):
        table = TextTable(["A", "B"])
        table.add_row("x", 1).add_rule().add_row("y", 2)
        lines = table.render().splitlines()
        assert any(set(line.strip()) == {"-"} for line in lines[2:])

    def test_float_format_override(self):
        table = TextTable(["A", "B"], float_format="{:.1f}")
        table.add_row("x", 2.345)
        assert "2.3" in table.render()

    def test_none_renders_as_dash(self):
        table = TextTable(["A", "B"])
        table.add_row("x", None)
        assert table.render().splitlines()[-1].endswith("-")

    def test_bool_renders_as_words(self):
        table = TextTable(["A", "B"])
        table.add_row("x", True)
        assert "yes" in table.render()

    def test_wrong_cell_count_rejected(self):
        table = TextTable(["A", "B"])
        with pytest.raises(ReproError):
            table.add_row("only one")

    def test_empty_headers_rejected(self):
        with pytest.raises(ReproError):
            TextTable([])

    def test_str_equals_render(self):
        table = TextTable(["A"])
        table.add_row("x")
        assert str(table) == table.render()

    def test_wide_cells_stretch_columns(self):
        table = TextTable(["A", "B"])
        table.add_row("a-very-long-name", 1)
        header, rule, row = table.render().splitlines()
        assert len(rule) >= len("a-very-long-name")
        assert row.startswith("a-very-long-name")
