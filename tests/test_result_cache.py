"""The content-addressed simulation result cache (marker: ``parallel``).

The cache's contract is asymmetric: a hit must be indistinguishable
from recomputation (identical payloads), and *anything* suspicious — a
changed penalty model, kernel, trace or a damaged entry file — must be
a miss.  A cache can make runs faster, never wrong.
"""

import pytest

from repro.errors import CacheError
from repro.parallel.cache import (
    CacheIntegrityWarning,
    SimulationCache,
    canonical_key,
    corrupt_discarded_total,
    default_cache_root,
)
from repro.policy.promotion import DynamicPromotionPolicy
from repro.robustness import faultinject
from repro.robustness.journal import RunJournal
from repro.sim.config import PAIR_4KB_32KB, SingleSizeScheme, TLBConfig
from repro.sim.config import TwoSizeScheme
from repro.sim.driver import run_single_size, run_two_sizes, run_with_policy
from repro.sim.sweep import sweep_single_size
from repro.workloads.registry import generate_trace

pytestmark = pytest.mark.parallel

CONFIG = TLBConfig(entries=16, associativity=2)
SCHEME = SingleSizeScheme(4096)


@pytest.fixture(scope="module")
def trace():
    return generate_trace("li", 5000, seed=2)


@pytest.fixture()
def cache(tmp_path):
    return SimulationCache.open(tmp_path / "cache")


class TestCanonicalKey:
    def test_key_ignores_mapping_order(self):
        assert canonical_key({"a": 1, "b": [2, 3]}) == canonical_key(
            {"b": [2, 3], "a": 1}
        )

    def test_key_is_value_sensitive(self):
        assert canonical_key({"a": 1}) != canonical_key({"a": 2})
        assert canonical_key({"a": 1}) != canonical_key({"b": 1})


class TestEnvironment:
    def test_disabled_by_repro_cache_zero(self, monkeypatch):
        for value in ("0", "off", "no", "false", " OFF "):
            monkeypatch.setenv("REPRO_CACHE", value)
            assert SimulationCache.from_environment() is None

    def test_relocated_by_repro_cache_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert default_cache_root() == tmp_path / "elsewhere"
        opened = SimulationCache.from_environment()
        assert opened is not None and opened.root == tmp_path / "elsewhere"

    def test_unusable_root_raises(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        with pytest.raises(CacheError, match="cannot create"):
            SimulationCache.open(blocker / "sub")


class TestSingleSize:
    def test_hit_on_identical_key(self, trace, cache):
        first = run_single_size(trace, SCHEME, CONFIG, cache=cache)
        assert (cache.stats.misses, cache.stats.stores) == (1, 1)
        second = run_single_size(trace, SCHEME, CONFIG, cache=cache)
        assert cache.stats.hits == 1
        assert second.to_payload() == first.to_payload()

    def test_miss_on_changed_penalty_kernel_or_trace(self, trace, cache):
        run_single_size(trace, SCHEME, CONFIG, cache=cache)
        baseline = cache.stats.hits

        run_single_size(trace, SCHEME, CONFIG, base_penalty=25.0, cache=cache)
        run_single_size(trace, SCHEME, CONFIG, kernel="scalar", cache=cache)
        other = generate_trace("li", 5000, seed=9)  # same name, new content
        assert other.fingerprint != trace.fingerprint
        run_single_size(other, SCHEME, CONFIG, cache=cache)

        assert cache.stats.hits == baseline  # three misses, zero hits
        assert cache.stats.stores == 4

    def test_corrupt_entry_discarded_and_recomputed(self, trace, cache):
        first = run_single_size(trace, SCHEME, CONFIG, cache=cache)
        (entry,) = list(cache.root.rglob("*.json"))
        faultinject.flip_byte(entry, entry.stat().st_size // 2, mask=0x40)

        # The discard is never silent: a warning names the entry, and
        # the per-process counter feeds the sweep summary.
        before = corrupt_discarded_total()
        with pytest.warns(
            CacheIntegrityWarning, match="corrupt result-cache entry"
        ):
            recomputed = run_single_size(trace, SCHEME, CONFIG, cache=cache)
        assert corrupt_discarded_total() - before == 1
        assert recomputed.to_payload() == first.to_payload()
        assert cache.stats.discards == 1
        assert cache.stats.stores == 2  # the repaired entry was rewritten
        # ... and the rewritten entry is trusted again.
        run_single_size(trace, SCHEME, CONFIG, cache=cache)
        assert cache.stats.hits == 1


class TestPolicyRuns:
    CONFIGS = (TLBConfig(entries=16, associativity=2), TLBConfig(entries=8))
    SCHEME = TwoSizeScheme(window=1000)

    def test_run_two_sizes_hits_whole_config_set(self, trace, cache):
        first = run_two_sizes(trace, self.SCHEME, self.CONFIGS, cache=cache)
        assert cache.stats.stores == len(self.CONFIGS)
        second = run_two_sizes(trace, self.SCHEME, self.CONFIGS, cache=cache)
        assert cache.stats.hits == len(self.CONFIGS)
        for ours, theirs in zip(second, first):
            assert ours.to_payload() == theirs.to_payload()

    def test_used_policy_bypasses_the_cache(self, trace, cache):
        policy = DynamicPromotionPolicy(PAIR_4KB_32KB, window=1000)
        policy.access(0)  # one observed reference: history-dependent now
        assert policy.cache_token() is None
        run_with_policy(trace, policy, list(self.CONFIGS), cache=cache)
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.stores) == (0, 0, 0)


class TestSweepLayering:
    PAGE_SIZES = (4096, 8192)
    CONFIGS = (TLBConfig(entries=16, associativity=2),)

    def test_warm_cache_replays_and_journals(self, trace, cache, tmp_path):
        cold = sweep_single_size(
            trace, self.PAGE_SIZES, self.CONFIGS, cache=cache
        )
        assert cache.stats.stores == len(cold)

        journal = RunJournal(tmp_path / "sweep.jsonl", fingerprint={"s": 1})
        warm = sweep_single_size(
            trace, self.PAGE_SIZES, self.CONFIGS, cache=cache, journal=journal
        )
        assert cache.stats.hits == len(cold)
        for key in cold:
            assert warm[key].to_payload() == cold[key].to_payload()
        # Cache hits are copied into the journal: a later resume works
        # even with the cache disabled.
        assert sum(1 for r in journal.units.values() if r.succeeded) == len(
            cold
        )

    def test_journal_keyed_by_trace_fingerprint(self, trace, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl", fingerprint={"s": 1})
        sweep_single_size(
            trace, self.PAGE_SIZES, self.CONFIGS, journal=journal
        )
        fingerprinted = [
            unit for unit in journal.units if trace.fingerprint[:12] in unit
        ]
        assert len(fingerprinted) == len(self.PAGE_SIZES)

        # A different trace with the same workload name must NOT be
        # satisfied by this journal: with the fault armed, a journal hit
        # would be silent, a real re-simulation trips the injected fault.
        other = generate_trace("li", 5000, seed=9)
        assert other.name == trace.name
        assert other.fingerprint != trace.fingerprint
        journal = RunJournal(tmp_path / "j.jsonl", fingerprint={"s": 1})
        with faultinject.inject(
            faultinject.FaultPlan(times=1, sites=("sim.sweep",))
        ):
            with pytest.raises(faultinject.TransientInjectedFault):
                sweep_single_size(
                    other, self.PAGE_SIZES, self.CONFIGS, journal=journal
                )
        # The original trace, by contrast, resumes entirely from the
        # journal: no pass runs, so the armed fault is never reached.
        journal = RunJournal(tmp_path / "j.jsonl", fingerprint={"s": 1})
        with faultinject.inject(
            faultinject.FaultPlan(times=1, sites=("sim.sweep",))
        ):
            replayed = sweep_single_size(
                trace, self.PAGE_SIZES, self.CONFIGS, journal=journal
            )
        assert set(replayed) == {
            (size, config.label)
            for size in self.PAGE_SIZES
            for config in self.CONFIGS
        }
