"""Tests for the fault-tolerance layer: journal, retry, executor, runner.

The end-to-end class at the bottom exercises the PR's acceptance
scenario: a suite killed mid-run (via an injected fault) is rerun with
``--resume``, skips the journaled experiments, completes the rest, and
reports the one intentionally broken experiment as FAILED while every
healthy experiment still produces its results file.
"""

import json

import pytest

from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    JournalError,
)
from repro.experiments import runner
from repro.robustness import faultinject
from repro.robustness.executor import SuiteReport, UnitSpec, run_units
from repro.robustness.journal import RunJournal
from repro.robustness.retry import Deadline, RetryPolicy, call_with_retry
from repro.sim.sweep import sweep_single_size
from repro.sim.config import TLBConfig
from repro.types import PAGE_4KB, PAGE_8KB
from repro.workloads import generate_trace


class TestRunJournal:
    def test_record_and_query(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl", fingerprint={"k": 1})
        journal.record_success("a", elapsed=1.5, payload={"x": 2})
        journal.record_failure("b", error="boom", traceback="tb")
        assert journal.completed("a")
        assert not journal.completed("b")
        assert journal.get("a").payload == {"x": 2}
        assert [r.unit for r in journal.failures] == ["b"]

    def test_reload_replays_units(self, tmp_path):
        path = tmp_path / "j.jsonl"
        first = RunJournal(path, fingerprint={"k": 1})
        first.record_success("a")
        first.record_failure("b", error="boom")
        second = RunJournal(path, fingerprint={"k": 1})
        assert second.completed("a")
        assert not second.completed("b")

    def test_latest_record_wins(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = RunJournal(path, fingerprint={})
        journal.record_failure("a", error="boom")
        journal.record_success("a")
        assert journal.completed("a")
        assert RunJournal(path, fingerprint={}).completed("a")

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        RunJournal(path, fingerprint={"trace_length": 1000})
        with pytest.raises(JournalError):
            RunJournal(path, fingerprint={"trace_length": 2000})

    def test_none_fingerprint_skips_check(self, tmp_path):
        path = tmp_path / "j.jsonl"
        RunJournal(path, fingerprint={"trace_length": 1000})
        RunJournal(path)  # read-only inspection: no error

    def test_torn_final_line_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = RunJournal(path, fingerprint={})
        journal.record_success("a")
        journal.record_success("b")
        with open(path, "a") as stream:
            stream.write('{"type": "unit", "unit": "c", "stat')
        reloaded = RunJournal(path, fingerprint={})
        assert reloaded.completed("a") and reloaded.completed("b")
        assert reloaded.get("c") is None
        assert reloaded.dropped_torn_line

    def test_torn_tail_truncated_then_appendable(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = RunJournal(path, fingerprint={})
        journal.record_success("a")
        with open(path, "a") as stream:
            stream.write('{"type": "unit", "unit": "b", "stat')
        # Crash → resume: the torn fragment must be physically
        # truncated so the next append does not merge with it.
        resumed = RunJournal(path, fingerprint={})
        assert resumed.dropped_torn_line
        resumed.record_success("b")
        resumed.record_success("c")
        # Resume again: every line parses and no success was lost.
        again = RunJournal(path, fingerprint={})
        assert not again.dropped_torn_line
        assert again.completed("a")
        assert again.completed("b")
        assert again.completed("c")

    def test_append_after_lost_trailing_newline(self, tmp_path):
        path = tmp_path / "j.jsonl"
        RunJournal(path, fingerprint={}).record_success("a")
        # A partial append can end exactly at the JSON's last byte: the
        # final line CRC-checks as valid but has no newline.
        with open(path, "rb+") as stream:
            stream.seek(-1, 2)
            stream.truncate()
        resumed = RunJournal(path, fingerprint={})
        resumed.record_success("b")
        again = RunJournal(path, fingerprint={})
        assert again.completed("a") and again.completed("b")

    def test_corrupt_middle_line_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = RunJournal(path, fingerprint={})
        journal.record_success("a")
        journal.record_success("b")
        lines = path.read_text().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]  # mangle a non-final line
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError):
            RunJournal(path, fingerprint={})

    def test_crc_detects_edited_line(self, tmp_path):
        path = tmp_path / "j.jsonl"
        RunJournal(path, fingerprint={}).record_success("a", elapsed=1.0)
        lines = path.read_text().splitlines()
        record = json.loads(lines[1])
        record["status"] = "failed"  # tampered without fixing the crc
        lines[1] = json.dumps(record)
        lines.append(lines[1])  # keep the bad line non-final
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError):
            RunJournal(path, fingerprint={})

    def test_empty_journal_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text("")
        with pytest.raises(JournalError):
            RunJournal(path, fingerprint={})


class TestRetry:
    def test_backoff_schedule(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=1.0, multiplier=2.0, max_delay=5.0
        )
        assert list(policy.delays()) == [1.0, 2.0, 4.0, 5.0]

    def test_invalid_policies_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)

    def test_succeeds_after_transient_failures(self):
        sleeps = []
        fn = faultinject.flaky(lambda: "done", failures=2)
        result, attempts = call_with_retry(
            fn,
            policy=RetryPolicy(max_attempts=3, base_delay=0.5),
            sleep=sleeps.append,
        )
        assert result == "done"
        assert attempts == 3
        assert sleeps == [0.5, 1.0]

    def test_exhaustion_raises_last_error(self):
        fn = faultinject.flaky(lambda: "done", failures=10)
        with pytest.raises(faultinject.TransientInjectedFault):
            call_with_retry(
                fn,
                policy=RetryPolicy(max_attempts=2, base_delay=0.0),
                sleep=lambda _: None,
            )

    def test_deadline_stops_retries(self):
        clock = {"now": 0.0}
        deadline = Deadline(10.0, clock=lambda: clock["now"])

        def advance_and_fail():
            clock["now"] += 6.0
            raise faultinject.TransientInjectedFault("flaky")

        with pytest.raises(DeadlineExceededError):
            call_with_retry(
                advance_and_fail,
                policy=RetryPolicy(max_attempts=10, base_delay=0.0),
                deadline=deadline,
                sleep=lambda _: None,
            )

    def test_deadline_unbounded_by_default(self):
        deadline = Deadline(None)
        assert deadline.remaining() == float("inf")
        assert not deadline.expired
        deadline.check()  # no raise

    def test_deadline_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            Deadline(0)


class TestExecutor:
    @staticmethod
    def _suite(units):
        return run_units(
            units,
            retry_policy=RetryPolicy(max_attempts=2, base_delay=0.0),
            sleep=lambda _: None,
        )

    def test_failure_is_isolated(self):
        def boom():
            raise RuntimeError("kaput")

        report = self._suite(
            [
                UnitSpec("a", lambda: "ra"),
                UnitSpec("b", boom),
                UnitSpec("c", lambda: "rc"),
            ]
        )
        assert [o.status for o in report.outcomes] == ["ok", "failed", "ok"]
        assert report.exit_code == 1
        assert "RuntimeError: kaput" in report.failures[0].error
        assert "Traceback" in report.failures[0].traceback

    def test_fail_fast_stops_suite(self):
        ran = []

        def boom():
            raise RuntimeError("kaput")

        report = run_units(
            [
                UnitSpec("a", boom),
                UnitSpec("b", lambda: ran.append("b")),
            ],
            retry_policy=RetryPolicy(max_attempts=1),
            fail_fast=True,
            sleep=lambda _: None,
        )
        assert len(report.outcomes) == 1
        assert ran == []

    def test_transient_fault_recovers_with_retry(self):
        fn = faultinject.flaky(lambda: "ok", failures=1)
        report = self._suite([UnitSpec("a", fn)])
        assert report.ok
        assert report.outcomes[0].attempts == 2

    def test_journal_resume_skips_completed(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl", fingerprint={})
        calls = []
        units = [
            UnitSpec("a", lambda: calls.append("a")),
            UnitSpec("b", lambda: calls.append("b")),
        ]
        run_units(units, journal=journal, retry_policy=RetryPolicy(1))
        assert calls == ["a", "b"]
        resumed = run_units(
            units,
            journal=RunJournal(tmp_path / "j.jsonl", fingerprint={}),
            resume=True,
            retry_policy=RetryPolicy(1),
        )
        assert calls == ["a", "b"]  # nothing re-ran
        assert [o.status for o in resumed.outcomes] == ["skipped", "skipped"]
        assert resumed.ok

    def test_failed_units_rerun_on_resume(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl", fingerprint={})
        attempts = {"n": 0}

        def eventually():
            attempts["n"] += 1
            if attempts["n"] == 1:
                raise RuntimeError("first run dies")
            return "ok"

        units = [UnitSpec("a", eventually)]
        first = run_units(units, journal=journal, retry_policy=RetryPolicy(1))
        assert not first.ok
        second = run_units(
            units,
            journal=RunJournal(tmp_path / "j.jsonl", fingerprint={}),
            resume=True,
            retry_policy=RetryPolicy(1),
        )
        assert second.ok and second.outcomes[0].status == "ok"

    def test_publish_failure_marks_unit_failed(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl", fingerprint={})

        def bad_publish(spec, result, elapsed):
            raise OSError("disk full")

        report = run_units(
            [UnitSpec("a", lambda: "ok")],
            journal=journal,
            retry_policy=RetryPolicy(1),
            on_success=bad_publish,
            sleep=lambda _: None,
        )
        # The unit ran but its outputs were never written: it must be
        # isolated as FAILED, not raised, and not journaled complete.
        assert not report.ok
        assert report.outcomes[0].status == "failed"
        assert "disk full" in report.outcomes[0].error
        assert not journal.completed("a")
        # So a later --resume re-runs and re-publishes it.
        published = []
        resumed = run_units(
            [UnitSpec("a", lambda: "ok")],
            journal=RunJournal(tmp_path / "j.jsonl", fingerprint={}),
            resume=True,
            retry_policy=RetryPolicy(1),
            on_success=lambda spec, result, elapsed: published.append(
                spec.name
            ),
        )
        assert resumed.ok and published == ["a"]

    def test_journal_payload_stored_on_success(self, tmp_path):
        run_units(
            [UnitSpec("a", lambda: 41)],
            journal=RunJournal(tmp_path / "j.jsonl", fingerprint={}),
            retry_policy=RetryPolicy(1),
            journal_payload=lambda spec, result: {"answer": result + 1},
        )
        reloaded = RunJournal(tmp_path / "j.jsonl", fingerprint={})
        assert reloaded.get("a").payload == {"answer": 42}

    def test_interrupt_is_journaled_and_propagates(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl", fingerprint={})

        def die():
            raise KeyboardInterrupt()

        with pytest.raises(KeyboardInterrupt):
            run_units(
                [UnitSpec("a", lambda: "ok"), UnitSpec("b", die)],
                journal=journal,
                retry_policy=RetryPolicy(1),
            )
        reloaded = RunJournal(tmp_path / "j.jsonl", fingerprint={})
        assert reloaded.completed("a")
        assert not reloaded.completed("b")

    def test_report_render(self):
        report = self._suite(
            [
                UnitSpec("good", lambda: 1),
                UnitSpec("bad", faultinject.flaky(lambda: 1, failures=99)),
            ]
        )
        text = report.render()
        assert "1 ok" in text and "1 failed" in text
        assert "FAILED bad" in text

    def test_empty_suite_is_ok(self):
        report = run_units([])
        assert isinstance(report, SuiteReport)
        assert report.ok and report.exit_code == 0


class TestSweepJournal:
    def test_sweep_results_checkpoint_and_replay(self, tmp_path):
        trace = generate_trace("li", 5_000)
        configs = [TLBConfig(16), TLBConfig(16, 2)]
        journal = RunJournal(tmp_path / "sweep.jsonl", fingerprint={})
        first = sweep_single_size(
            trace, [PAGE_4KB, PAGE_8KB], configs, journal=journal
        )
        # Re-sweeping with the journal must not touch the simulator at
        # all: arm a fault plan that would detonate on any sweep pass.
        reloaded = RunJournal(tmp_path / "sweep.jsonl", fingerprint={})
        with faultinject.inject(
            faultinject.FaultPlan(times=99, sites=["sim.sweep"])
        ):
            second = sweep_single_size(
                trace, [PAGE_4KB, PAGE_8KB], configs, journal=reloaded
            )
        assert set(first) == set(second)
        for key in first:
            assert first[key].misses == second[key].misses
            assert first[key].config == second[key].config
            assert first[key].cpi_tlb == pytest.approx(second[key].cpi_tlb)


class FakeResult:
    def __init__(self, name):
        self.name = name

    def render(self):
        return f"RESULT {self.name}"


class TestRunnerEndToEnd:
    """The acceptance scenario, driven through the real CLI ``main``."""

    @pytest.fixture
    def fake_suite(self, monkeypatch):
        state = {"boom_calls": 0}

        def ok(name):
            return lambda scale: FakeResult(name)

        def killer(scale):
            # First invocation simulates the process being killed
            # mid-suite; later invocations (the resumed run) succeed.
            state["boom_calls"] += 1
            if state["boom_calls"] == 1:
                raise KeyboardInterrupt()
            return FakeResult("boom")

        def always_fails(scale):
            raise RuntimeError("intentionally broken experiment")

        experiments = {
            "alpha": ok("alpha"),
            "boom": killer,
            "beta": always_fails,
            "gamma": ok("gamma"),
        }
        monkeypatch.setattr(runner, "EXPERIMENTS", experiments)
        return state

    def _argv(self, tmp_path, *extra):
        return [
            "--trace-length", "1000",
            "--window", "100",
            "--journal", str(tmp_path / "journal.jsonl"),
            "--results-dir", str(tmp_path / "results"),
            "--retries", "1",
            "--retry-delay", "0",
            *extra,
        ]

    def test_kill_resume_completes_with_failure_report(
        self, tmp_path, fake_suite, capsys
    ):
        # Run 1: alpha completes, then the injected kill lands.
        with pytest.raises(KeyboardInterrupt):
            runner.main(self._argv(tmp_path))
        journal = RunJournal(tmp_path / "journal.jsonl")
        assert journal.completed("experiment:alpha")
        assert not journal.completed("experiment:boom")
        assert (tmp_path / "results" / "alpha.txt").exists()
        capsys.readouterr()

        # Run 2: --resume skips alpha (re-publishing it from the
        # journaled payload, even though its results file was lost with
        # the crash), completes boom and gamma, and reports beta as
        # FAILED while the suite still finishes.
        (tmp_path / "results" / "alpha.txt").unlink()
        code = runner.main(self._argv(tmp_path, "--resume"))
        out = capsys.readouterr().out
        assert code == 1
        assert "[alpha: restored from journal]" in out
        assert "RESULT alpha" in out
        assert "RESULT boom" in out and "RESULT gamma" in out
        assert "FAILED experiment:beta" in out
        assert "intentionally broken experiment" in out
        for name in ("alpha", "boom", "gamma"):
            assert (tmp_path / "results" / f"{name}.txt").exists(), name
        assert not (tmp_path / "results" / "beta.txt").exists()
        journal = RunJournal(tmp_path / "journal.jsonl")
        assert journal.completed("experiment:gamma")
        assert not journal.completed("experiment:beta")

    def test_retries_are_attempted(self, tmp_path, fake_suite, capsys):
        with pytest.raises(KeyboardInterrupt):
            runner.main(self._argv(tmp_path))
        capsys.readouterr()
        runner.main(self._argv(tmp_path, "--resume"))
        err = capsys.readouterr().err
        assert "beta attempt 1 failed" in err
        journal = RunJournal(tmp_path / "journal.jsonl")
        assert journal.get("experiment:beta").attempts == 2

    def test_scale_mismatch_on_resume_exits_2(
        self, tmp_path, fake_suite, capsys
    ):
        with pytest.raises(KeyboardInterrupt):
            runner.main(self._argv(tmp_path))
        capsys.readouterr()
        argv = self._argv(tmp_path, "--resume")
        argv[1] = "2000"  # different --trace-length than the journal
        assert runner.main(argv) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro-experiments:")
        assert err.count("\n") == 1  # one-line message, no traceback

    def test_fail_fast_flag(self, tmp_path, fake_suite, capsys):
        with pytest.raises(KeyboardInterrupt):
            runner.main(self._argv(tmp_path))
        capsys.readouterr()
        code = runner.main(self._argv(tmp_path, "--resume", "--fail-fast"))
        out = capsys.readouterr().out
        assert code == 1
        assert "RESULT gamma" not in out  # suite stopped at beta
