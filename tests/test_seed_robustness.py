"""Seed robustness: the paper's qualitative results must not hinge on
one lucky RNG stream.

Each check runs the decisive comparisons at smoke scale under three
different generator seeds.  (The benchmarks use seed 0; these tests
guard against the calibration having overfit to it.)
"""

import pytest

from repro.sim import SingleSizeScheme, TLBConfig, TwoSizeScheme
from repro.sim.driver import run_single_size, run_two_sizes
from repro.stacksim import average_working_set_bytes
from repro.types import PAGE_4KB, PAGE_32KB
from repro.workloads import generate_trace

SEEDS = (0, 1, 2)
LENGTH = 80_000
WINDOW = 10_000


@pytest.mark.parametrize("seed", SEEDS)
class TestSignsAcrossSeeds:
    def test_matrix300_improves_with_two_sizes(self, seed):
        trace = generate_trace("matrix300", LENGTH, seed=seed)
        config = TLBConfig(16, 2)
        baseline = run_single_size(trace, SingleSizeScheme(PAGE_4KB), config)
        (two,) = run_two_sizes(trace, TwoSizeScheme(window=WINDOW), [config])
        assert two.cpi_tlb < baseline.cpi_tlb

    def test_espresso_degrades_with_two_sizes(self, seed):
        trace = generate_trace("espresso", LENGTH, seed=seed)
        config = TLBConfig(16, 2)
        baseline = run_single_size(trace, SingleSizeScheme(PAGE_4KB), config)
        (two,) = run_two_sizes(trace, TwoSizeScheme(window=WINDOW), [config])
        assert two.cpi_tlb > baseline.cpi_tlb
        assert two.promotions == 0

    def test_tomcatv_anomaly(self, seed):
        trace = generate_trace("tomcatv", LENGTH, seed=seed)
        config = TLBConfig(16, 2)
        baseline = run_single_size(trace, SingleSizeScheme(PAGE_4KB), config)
        (two,) = run_two_sizes(trace, TwoSizeScheme(window=WINDOW), [config])
        assert two.cpi_tlb > 1.5 * baseline.cpi_tlb

    def test_large_pages_inflate_sparse_more_than_dense(self, seed):
        sparse = generate_trace("worm", LENGTH, seed=seed)
        dense = generate_trace("matrix300", LENGTH, seed=seed)

        def inflation(trace):
            small = average_working_set_bytes(trace, PAGE_4KB, [WINDOW])[
                WINDOW
            ]
            large = average_working_set_bytes(trace, PAGE_32KB, [WINDOW])[
                WINDOW
            ]
            return large / small

        assert inflation(sparse) > 1.5 * inflation(dense)

    def test_32kb_cuts_fa_misses_for_dense_programs(self, seed):
        trace = generate_trace("x11perf", LENGTH, seed=seed)
        config = TLBConfig(16)
        small = run_single_size(trace, SingleSizeScheme(PAGE_4KB), config)
        large = run_single_size(trace, SingleSizeScheme(PAGE_32KB), config)
        assert large.misses * 3 < small.misses
