"""Tests for the simulation drivers and configuration sweep."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.policy import StaticLargePolicy, StaticSmallPolicy
from repro.sim import (
    RunResult,
    SingleSizeScheme,
    TLBConfig,
    TwoSizeScheme,
    run_single_size,
    run_two_sizes,
    run_with_policy,
    sweep_single_size,
)
from repro.tlb import FullyAssociativeTLB, IndexingScheme, SetAssociativeTLB
from repro.trace import Trace
from repro.types import PAGE_4KB, PAGE_8KB, PAGE_32KB, PAIR_4KB_32KB


def random_trace(length=20_000, pages=200, seed=0):
    rng = np.random.default_rng(seed)
    addresses = rng.integers(0, pages, size=length) * PAGE_4KB + rng.integers(
        0, PAGE_4KB, size=length
    )
    return Trace(addresses.astype(np.uint32), name="random", refs_per_instruction=1.25)


class TestTLBConfig:
    def test_labels(self):
        assert TLBConfig(16).label == "16e-FA"
        assert TLBConfig(16, 16).label == "16e-FA"
        assert (
            TLBConfig(32, 2, IndexingScheme.EXACT_INDEX).label
            == "32e-2way-exact"
        )

    def test_build_types(self):
        assert isinstance(TLBConfig(16).build(), FullyAssociativeTLB)
        assert isinstance(TLBConfig(16, 2).build(), SetAssociativeTLB)

    def test_invalid_geometry(self):
        with pytest.raises(ConfigurationError):
            TLBConfig(0)
        with pytest.raises(ConfigurationError):
            TLBConfig(16, 3)

    def test_scheme_labels(self):
        assert SingleSizeScheme(PAGE_32KB).label == "32KB"
        assert not SingleSizeScheme(PAGE_4KB).two_page_sizes
        assert TwoSizeScheme().label == "4KB/32KB"
        assert TwoSizeScheme().two_page_sizes


class TestRunSingleSize:
    def test_matches_manual_simulation(self):
        trace = random_trace()
        result = run_single_size(trace, SingleSizeScheme(PAGE_4KB), TLBConfig(16))
        tlb = FullyAssociativeTLB(16)
        for address in trace.addresses:
            tlb.access_single(int(address) >> 12)
        assert result.misses == tlb.stats.misses

    def test_larger_pages_miss_less_on_dense_traces(self):
        addresses = np.arange(100_000, dtype=np.uint32) * 64
        trace = Trace(addresses, name="dense")
        small = run_single_size(trace, SingleSizeScheme(PAGE_4KB), TLBConfig(16))
        large = run_single_size(trace, SingleSizeScheme(PAGE_32KB), TLBConfig(16))
        assert large.misses * 7 < small.misses

    def test_penalty_default(self):
        result = run_single_size(
            random_trace(1000), SingleSizeScheme(PAGE_4KB), TLBConfig(8)
        )
        assert result.miss_penalty_cycles == 20.0

    def test_cpi_property(self):
        result = run_single_size(
            random_trace(1000), SingleSizeScheme(PAGE_4KB), TLBConfig(8)
        )
        expected = (result.misses / (1000 / 1.25)) * 20.0
        assert result.cpi_tlb == pytest.approx(expected)


class TestRunWithPolicy:
    def test_all_small_policy_equals_single_size(self):
        trace = random_trace()
        policy = StaticSmallPolicy(PAIR_4KB_32KB)
        (result,) = run_with_policy(
            trace, policy, [TLBConfig(16)], penalty_factor=1.0
        )
        single = run_single_size(trace, SingleSizeScheme(PAGE_4KB), TLBConfig(16))
        assert result.misses == single.misses
        assert result.miss_penalty_cycles == 20.0

    def test_all_large_policy_equals_single_large_size(self):
        trace = random_trace()
        policy = StaticLargePolicy(PAIR_4KB_32KB)
        (result,) = run_with_policy(
            trace, policy, [TLBConfig(16)], penalty_factor=1.0
        )
        single = run_single_size(
            trace, SingleSizeScheme(PAGE_32KB), TLBConfig(16)
        )
        assert result.misses == single.misses

    def test_multiple_configs_share_one_pass(self):
        trace = random_trace()
        scheme = TwoSizeScheme(window=2000)
        configs = [TLBConfig(16), TLBConfig(16, 2), TLBConfig(32, 2)]
        results = run_two_sizes(trace, scheme, configs)
        assert [r.config for r in results] == configs
        # Promotion counts are shared policy state, identical across rows.
        assert len({r.promotions for r in results}) == 1
        # Separate single runs must agree with the shared pass.
        for config in configs:
            (single,) = run_two_sizes(trace, scheme, [config])
            shared = next(r for r in results if r.config == config)
            assert single.misses == shared.misses

    def test_two_size_penalty_is_25_cycles(self):
        results = run_two_sizes(
            random_trace(2000), TwoSizeScheme(window=500), [TLBConfig(8)]
        )
        assert results[0].miss_penalty_cycles == 25.0

    def test_dense_trace_promotes_and_wins(self):
        # Dense sweep: chunks promote, two-size CPI beats single 4KB
        # even with the higher penalty.
        addresses = np.arange(200_000, dtype=np.uint32) * 64
        trace = Trace(np.tile(addresses[:50_000], 4), name="dense")
        scheme = TwoSizeScheme(window=10_000)
        (two,) = run_two_sizes(trace, scheme, [TLBConfig(16)])
        single = run_single_size(trace, SingleSizeScheme(PAGE_4KB), TLBConfig(16))
        assert two.promotions > 0
        assert two.cpi_tlb < single.cpi_tlb

    def test_sparse_trace_never_promotes_and_loses(self):
        # One block per chunk: no promotions, pure penalty increase.
        rng = np.random.default_rng(5)
        addresses = rng.integers(0, 300, size=50_000).astype(np.uint32) * PAGE_32KB
        trace = Trace(addresses, name="sparse", refs_per_instruction=1.25)
        scheme = TwoSizeScheme(window=5_000)
        (two,) = run_two_sizes(trace, scheme, [TLBConfig(16)])
        single = run_single_size(trace, SingleSizeScheme(PAGE_4KB), TLBConfig(16))
        assert two.promotions == 0
        assert two.misses == single.misses
        assert two.cpi_tlb == pytest.approx(1.25 * single.cpi_tlb)

    def test_empty_configs_rejected(self):
        with pytest.raises(ConfigurationError):
            run_with_policy(random_trace(10), StaticSmallPolicy(PAIR_4KB_32KB), [])


class TestSweepSingleSize:
    def test_matches_direct_driver(self):
        trace = random_trace()
        configs = [TLBConfig(16), TLBConfig(16, 2), TLBConfig(32, 2)]
        swept = sweep_single_size(trace, [PAGE_4KB, PAGE_8KB], configs)
        for page_size in (PAGE_4KB, PAGE_8KB):
            for config in configs:
                direct = run_single_size(
                    trace, SingleSizeScheme(page_size), config
                )
                assert (
                    swept[(page_size, config.label)].misses == direct.misses
                ), (page_size, config.label)

    def test_index_shift_matches_large_index_tlb(self):
        # Sweeping 4KB pages with a 3-bit index shift must equal the
        # direct set-associative TLB using the LARGE_INDEX scheme.
        trace = random_trace()
        config = TLBConfig(16, 2, IndexingScheme.LARGE_INDEX)
        swept = sweep_single_size(
            trace, [PAGE_4KB], [config], index_shift=3
        )
        policy = StaticSmallPolicy(PAIR_4KB_32KB)
        (direct,) = run_with_policy(
            trace, policy, [config], penalty_factor=1.0
        )
        assert swept[(PAGE_4KB, config.label)].misses == direct.misses

    def test_empty_configs_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep_single_size(random_trace(10), [PAGE_4KB], [])


class TestRunResult:
    def test_is_frozen(self):
        result = run_single_size(
            random_trace(100), SingleSizeScheme(PAGE_4KB), TLBConfig(4)
        )
        assert isinstance(result, RunResult)
        with pytest.raises(AttributeError):
            result.misses = 0
