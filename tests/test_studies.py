"""Tests for the declarative study layer (:mod:`repro.studies`).

Covers the schema (validation, TOML/JSON loading), the compiler
(lattice expansion, content-derived run IDs, within-plan and
cache-level dedupe), execution (journal resume, failure containment,
importance ranking), the ``repro-study`` CLI, and — the migration
contract — byte-identical equivalence between each migrated ablation
declaration and the hand-written loop it replaced.
"""

import dataclasses
import json

import pytest

from repro.errors import StudyError
from repro.experiments.scale import ExperimentScale
from repro.parallel.cache import SimulationCache
from repro.robustness import faultinject
from repro.robustness.journal import RunJournal
from repro.robustness.retry import RetryPolicy
from repro.studies.engine import compile_study, run_study
from repro.studies.registry import (
    get_study,
    study_names,
    threshold_study,
)
from repro.studies.spec import Factor, Study, load_study, study_from_mapping
from repro.studies.units import UNIT_KINDS, get_kind

SCALE = ExperimentScale(
    trace_length=30_000, window=5_000, use_cache=False,
    use_result_cache=False,
)


def _sans_counters(rendered):
    """A rendering with the provenance-counter line removed."""
    return [
        line for line in rendered.splitlines()
        if not line.startswith("units:")
    ]


def single_study(workloads=("matrix300",), metrics=("cpi_tlb",), **extra):
    defaults = dict(
        name="unit-test",
        kind="single",
        workloads=workloads,
        metrics=metrics,
        factors=(Factor("entries", (8, 16)),),
    )
    defaults.update(extra)
    return Study(**defaults)


class TestSpec:
    def test_requires_workloads_metrics_and_kind(self):
        with pytest.raises(StudyError, match="workloads"):
            Study(name="s", workloads=(), metrics=("cpi_tlb",), kind="single")
        with pytest.raises(StudyError, match="metrics"):
            Study(name="s", workloads=("li",), metrics=(), kind="single")
        with pytest.raises(StudyError, match="unit kind"):
            Study(name="s", workloads=("li",), metrics=("cpi_tlb",))

    def test_kind_as_factor_satisfies_the_kind_requirement(self):
        study = Study(
            name="s", workloads=("li",), metrics=("cpi_tlb",),
            factors=(Factor("kind", ("single", "two_size")),),
            fixed={"entries": 16},
        )
        assert study.factor_names == ("workload", "kind")

    def test_rejects_reserved_and_duplicate_factors(self):
        with pytest.raises(StudyError, match="implicit"):
            single_study(factors=(Factor("workload", ("li",)),))
        with pytest.raises(StudyError, match="repeats"):
            single_study(
                factors=(Factor("entries", (8,)), Factor("entries", (16,)))
            )
        with pytest.raises(StudyError, match="both fixed and a factor"):
            single_study(fixed={"entries": 8})

    def test_factor_validation(self):
        with pytest.raises(StudyError, match="no levels"):
            Factor("entries", ())
        with pytest.raises(StudyError, match="repeats a level"):
            Factor("entries", (8, 8))

    def test_with_overrides_replaces_levels(self):
        study = single_study().with_overrides(entries=(4, 32, 64))
        assert study.factor("entries").levels == (4, 32, 64)
        with pytest.raises(StudyError, match="no factor"):
            single_study().with_overrides(banana=(1,))

    def test_mapping_rejects_unknown_fields(self):
        with pytest.raises(StudyError, match="unknown study field"):
            study_from_mapping({"name": "s", "workload": ["li"]})
        with pytest.raises(StudyError, match="exactly the fields"):
            study_from_mapping(
                {
                    "name": "s", "kind": "single", "workloads": ["li"],
                    "metrics": ["cpi_tlb"],
                    "factors": [{"name": "entries", "extra": 1}],
                }
            )


class TestLoading:
    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "study.json"
        path.write_text(
            json.dumps(
                {
                    "name": "geometry", "kind": "single",
                    "workloads": ["li"], "metrics": ["cpi_tlb"],
                    "factors": [{"name": "entries", "levels": [8, 16]}],
                    "fixed": {"replacement": "fifo"},
                }
            )
        )
        study = load_study(path)
        assert study.name == "geometry"
        assert study.factor("entries").levels == (8, 16)
        assert study.fixed == {"replacement": "fifo"}

    def test_toml_round_trip(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "study.toml"
        path.write_text(
            'name = "geometry"\nkind = "single"\n'
            'workloads = ["li"]\nmetrics = ["cpi_tlb"]\n'
            "[[factors]]\nname = \"entries\"\nlevels = [8, 16]\n"
        )
        study = load_study(path)
        assert study.factor("entries").levels == (8, 16)

    def test_unreadable_and_unsupported_files(self, tmp_path):
        with pytest.raises(StudyError, match="cannot read"):
            load_study(tmp_path / "missing.json")
        bad = tmp_path / "study.yaml"
        bad.write_text("name: nope")
        with pytest.raises(StudyError, match="suffix"):
            load_study(bad)
        torn = tmp_path / "torn.json"
        torn.write_text("{not json")
        with pytest.raises(StudyError, match="not valid JSON"):
            load_study(torn)

    def test_example_toml_declaration_compiles(self):
        pytest.importorskip("tomllib")
        study = load_study("examples/studies/geometry.toml")
        plan = compile_study(study, SCALE)
        # 3 workloads x 3 entries x 2 replacement policies.
        assert len(plan.units) == 18


class TestCompile:
    def test_lattice_expansion_in_declaration_order(self):
        study = single_study(workloads=("matrix300", "li"))
        plan = compile_study(study, SCALE)
        points = [
            (u.point["workload"], u.point["entries"]) for u in plan.units
        ]
        assert points == [
            ("matrix300", 8), ("matrix300", 16), ("li", 8), ("li", 16),
        ]

    def test_validation_catches_typos(self):
        with pytest.raises(StudyError, match="unknown workload"):
            compile_study(single_study(workloads=("nope",)), SCALE)
        with pytest.raises(StudyError, match="produces metric"):
            compile_study(single_study(metrics=("banana",)), SCALE)
        with pytest.raises(StudyError, match="not a parameter"):
            compile_study(
                single_study(
                    factors=(Factor("entries", (8,)), Factor("nope", (1,)))
                ),
                SCALE,
            )
        with pytest.raises(StudyError, match="not consumed"):
            compile_study(single_study(fixed={"nope": 1}), SCALE)
        with pytest.raises(StudyError, match="unknown unit kind"):
            compile_study(single_study(kind="banana"), SCALE)
        with pytest.raises(StudyError, match="requires parameter"):
            compile_study(
                Study(
                    name="s", kind="split", workloads=("li",),
                    metrics=("cpi_tlb",),
                ),
                SCALE,
            )

    def test_window_resolved_from_scale_into_run_id(self):
        study = Study(
            name="s", kind="two_size", workloads=("li",),
            metrics=("cpi_tlb",), fixed={"entries": 16},
        )
        (unit,) = compile_study(study, SCALE).units
        assert unit.params["window"] == SCALE.window
        other = dataclasses.replace(SCALE, window=6_000)
        (unit2,) = compile_study(study, other).units
        assert unit.run_id != unit2.run_id


class TestRunIDs:
    def test_identical_across_compiles_and_study_names(self):
        a = compile_study(single_study(), SCALE)
        b = compile_study(single_study(name="renamed"), SCALE)
        assert [u.run_id for u in a.units] == [u.run_id for u in b.units]

    def test_cover_only_consumed_params(self):
        # A factor consumed by just one kind in a multi-kind lattice
        # collapses to a single unit for the other kind.
        study = Study(
            name="s", workloads=("li",), metrics=("cpi_tlb",),
            factors=(
                Factor("kind", ("single", "two_size")),
                Factor("promote_fraction", (0.25, 0.75)),
            ),
            fixed={"entries": 16},
        )
        plan = compile_study(study, SCALE)
        assert len(plan.units) == 4
        assert len(plan.unique_units) == 3  # one single + two two_size


class TestRunStudy:
    def test_within_plan_dedupe_simulates_unique_units_once(self):
        study = Study(
            name="s", workloads=("li",), metrics=("cpi_tlb",),
            factors=(
                Factor("kind", ("single", "two_size")),
                Factor("promote_fraction", (0.25, 0.75)),
            ),
            fixed={"entries": 16},
        )
        result = run_study(study, scale=SCALE, jobs=1, cache=None)
        assert result.counters["planned"] == 4
        assert result.counters["unique"] == 3
        assert result.counters["simulated"] == 3
        sources = [r.source for r in result.units]
        assert sources.count("dedup") == 1
        # Both single-kind points carry the same payload.
        a, b = [r for r in result.units if r.unit.kind == "single"]
        assert a.metrics == b.metrics

    def test_second_run_resolves_entirely_from_cache(self, tmp_path):
        cache = SimulationCache(tmp_path / "cache")
        study = single_study()
        first = run_study(study, scale=SCALE, jobs=1, cache=cache)
        assert first.counters["simulated"] == 2
        second = run_study(study, scale=SCALE, jobs=1, cache=cache)
        assert second.counters["simulated"] == 0
        assert second.counters["from_cache"] == 2
        for r1, r2 in zip(first.units, second.units):
            assert r1.metrics == r2.metrics
        # The table and ranking are identical; only provenance counters
        # differ between a fresh and a fully cached run.
        assert _sans_counters(first.render()) == _sans_counters(
            second.render()
        )

    def test_cache_entry_missing_a_wanted_metric_recomputes(self, tmp_path):
        cache = SimulationCache(tmp_path / "cache")
        narrow = threshold_study(fractions=(0.5,))
        narrow = dataclasses.replace(
            narrow, workloads=("li",), metrics=("cpi_tlb",)
        )
        run_study(narrow, scale=SCALE, jobs=1, cache=cache)
        wide = dataclasses.replace(
            narrow, metrics=("cpi_tlb", "ws_normalized")
        )
        upgraded = run_study(wide, scale=SCALE, jobs=1, cache=cache)
        assert upgraded.counters["simulated"] == 1  # lazy metric absent
        again = run_study(wide, scale=SCALE, jobs=1, cache=cache)
        assert again.counters["simulated"] == 0
        assert again.units[0].metrics["ws_normalized"] > 0

    def test_journal_resume_replays_without_simulating(self, tmp_path):
        study = single_study()
        journal_path = tmp_path / "journal.jsonl"
        first = run_study(
            study, scale=SCALE, jobs=1, cache=None,
            journal=RunJournal(journal_path, fingerprint={"s": 1}),
        )
        resumed = run_study(
            study, scale=SCALE, jobs=1, cache=None,
            journal=RunJournal(journal_path, fingerprint={"s": 1}),
            resume=True,
        )
        assert resumed.counters["simulated"] == 0
        assert resumed.counters["resumed"] == 2
        assert [r.metrics for r in resumed.units] == [
            r.metrics for r in first.units
        ]
        assert _sans_counters(first.render()) == _sans_counters(
            resumed.render()
        )

    def test_transient_fault_is_retried(self):
        with faultinject.inject(
            faultinject.FaultPlan(times=1, sites=("studies.unit",))
        ):
            result = run_study(
                single_study(), scale=SCALE, jobs=1, cache=None,
                retry_policy=RetryPolicy(max_attempts=2, base_delay=0.0),
            )
        assert result.counters["failed"] == 0
        assert result.counters["simulated"] == 2

    def test_persistent_failure_strict_and_lenient(self):
        plan = faultinject.FaultPlan(times=99, sites=("studies.unit",))
        with faultinject.inject(plan):
            with pytest.raises(StudyError, match="unit\\(s\\) failed"):
                run_study(
                    single_study(), scale=SCALE, jobs=1, cache=None,
                    retry_policy=RetryPolicy(max_attempts=1),
                )
        with faultinject.inject(
            faultinject.FaultPlan(times=99, sites=("studies.unit",))
        ):
            lenient = run_study(
                single_study(), scale=SCALE, jobs=1, cache=None,
                retry_policy=RetryPolicy(max_attempts=1), strict=False,
            )
        assert lenient.counters["failed"] == 2
        assert lenient.units == []
        assert "FAILED" in lenient.render()

    def test_value_and_table_lookup(self):
        result = run_study(
            single_study(), scale=SCALE, jobs=1, cache=None
        )
        v8 = result.value("cpi_tlb", workload="matrix300", entries=8)
        v16 = result.value("cpi_tlb", workload="matrix300", entries=16)
        assert v8 > v16  # more entries, fewer misses
        table = result.table("cpi_tlb", "entries")
        assert table == {"matrix300": {8: v8, 16: v16}}
        with pytest.raises(StudyError, match="no unit matches"):
            result.value("cpi_tlb", entries=99)
        with pytest.raises(StudyError, match="ambiguous"):
            result.value("cpi_tlb", workload="matrix300")

    def test_importance_ranks_largest_effect_first(self):
        result = run_study(
            single_study(workloads=("matrix300", "espresso")),
            scale=SCALE, jobs=1, cache=None,
        )
        effects = result.importance()
        assert [e.factor for e in effects] == ["workload", "entries"]
        deltas = [e.delta for e in effects]
        assert deltas == sorted(deltas, reverse=True)
        assert all(e.delta >= 0 for e in effects)

    def test_parallel_run_matches_serial(self):
        study = single_study(workloads=("matrix300", "li"))
        serial = run_study(study, scale=SCALE, jobs=1, cache=None)
        parallel = run_study(study, scale=SCALE, jobs=2, cache=None)
        assert [r.metrics for r in serial.units] == [
            r.metrics for r in parallel.units
        ]
        assert serial.render() == parallel.render()

    def test_to_json_shape(self):
        result = run_study(single_study(), scale=SCALE, jobs=1, cache=None)
        document = result.to_json()
        assert document["schema"] == "repro-study/1"
        assert document["counters"]["planned"] == 2
        assert len(document["units"]) == 2
        assert {u["source"] for u in document["units"]} == {"run"}
        json.dumps(document)  # must be serializable


class TestUnitKinds:
    def test_every_registered_study_compiles(self):
        for name in study_names():
            plan = compile_study(get_study(name), SCALE)
            assert plan.units

    def test_unknown_kind_and_metric_errors(self):
        with pytest.raises(StudyError, match="unknown unit kind"):
            get_kind("banana")
        with pytest.raises(StudyError, match="no metric"):
            UNIT_KINDS["single"].check_metrics(("banana",))


# ---------------------------------------------------------------------------
# Equivalence: each migrated ablation's declaration must render the
# byte-identical table its hand-written loop produced.  The loops below
# are condensed copies of the pre-migration implementations.
# ---------------------------------------------------------------------------


def _hand_threshold(scale, fractions=(0.25, 0.5, 0.75, 1.0)):
    from repro.experiments.ablations import (
        ABLATION_WORKLOADS, ThresholdAblation,
    )
    from repro.policy.dynamic_ws import dynamic_average_working_set
    from repro.sim.config import TLBConfig, TwoSizeScheme
    from repro.sim.driver import run_two_sizes
    from repro.stacksim.working_set import average_working_set_bytes
    from repro.types import PAGE_4KB, PAIR_4KB_32KB

    config, cache = TLBConfig(16), scale.sim_cache()
    cpi, ws = {}, {}
    for name in ABLATION_WORKLOADS:
        trace = scale.trace(name)
        baseline_ws = average_working_set_bytes(
            trace, PAGE_4KB, [scale.window]
        )[scale.window]
        cpi[name], ws[name] = {}, {}
        for fraction in fractions:
            scheme = TwoSizeScheme(
                window=scale.window, promote_fraction=fraction
            )
            (result,) = run_two_sizes(trace, scheme, [config], cache=cache)
            cpi[name][fraction] = result.cpi_tlb
            dynamic = dynamic_average_working_set(
                trace, PAIR_4KB_32KB, scale.window, promote_fraction=fraction
            )
            ws[name][fraction] = (
                dynamic.average_bytes / baseline_ws if baseline_ws else 1.0
            )
    return ThresholdAblation(cpi, ws, tuple(fractions), scale)


def _hand_penalty(scale, factors=(1.0, 1.25, 1.5, 2.0, 4.0)):
    from repro.experiments.ablations import (
        ABLATION_WORKLOADS, PenaltyAblation,
    )
    from repro.sim.config import SingleSizeScheme, TLBConfig, TwoSizeScheme
    from repro.sim.driver import run_single_size, run_two_sizes
    from repro.types import PAGE_4KB

    config, cache = TLBConfig(16), scale.sim_cache()
    baseline, cpi = {}, {}
    for name in ABLATION_WORKLOADS:
        trace = scale.trace(name)
        baseline[name] = run_single_size(
            trace, SingleSizeScheme(PAGE_4KB), config, cache=cache
        ).cpi_tlb
        (result,) = run_two_sizes(
            trace, TwoSizeScheme(window=scale.window), [config],
            penalty_factor=1.0, cache=cache,
        )
        cpi[name] = {factor: result.cpi_tlb * factor for factor in factors}
    return PenaltyAblation(baseline, cpi, tuple(factors), scale)


def _hand_probe(scale):
    from repro.experiments.ablations import ABLATION_WORKLOADS, ProbeAblation
    from repro.sim.config import TLBConfig, TwoSizeScheme
    from repro.sim.driver import run_two_sizes
    from repro.tlb.indexing import IndexingScheme, ProbeStrategy

    config = TLBConfig(
        16, 2, IndexingScheme.EXACT_INDEX,
        probe_strategy=ProbeStrategy.SEQUENTIAL,
    )
    cache = scale.sim_cache()
    misses, reprobes, references = {}, {}, {}
    for name in ABLATION_WORKLOADS:
        trace = scale.trace(name)
        (result,) = run_two_sizes(
            trace, TwoSizeScheme(window=scale.window), [config], cache=cache
        )
        misses[name] = result.misses
        reprobes[name] = result.reprobes
        references[name] = result.references
    return ProbeAblation(misses, reprobes, references, scale)


def _hand_replacement(scale, policies=("lru", "fifo", "random", "plru")):
    from repro.experiments.ablations import (
        ABLATION_WORKLOADS, ReplacementAblation,
    )
    from repro.sim.config import SingleSizeScheme, TLBConfig
    from repro.sim.driver import run_single_size
    from repro.types import PAGE_4KB

    cache = scale.sim_cache()
    cpi = {}
    for name in ABLATION_WORKLOADS:
        trace = scale.trace(name)
        cpi[name] = {}
        for policy in policies:
            result = run_single_size(
                trace, SingleSizeScheme(PAGE_4KB),
                TLBConfig(16, replacement=policy), cache=cache,
            )
            cpi[name][policy] = result.cpi_tlb
    return ReplacementAblation(cpi, tuple(policies), scale)


def _hand_split(scale):
    from repro.experiments.ablations import ABLATION_WORKLOADS, SplitAblation
    from repro.sim.config import TLBConfig, TwoSizeScheme
    from repro.sim.driver import run_split_two_sizes, run_two_sizes

    cache = scale.sim_cache()
    unified_cpi, split_cpi, utilisation = {}, {}, {}
    for name in ABLATION_WORKLOADS:
        trace = scale.trace(name)
        scheme = TwoSizeScheme(window=scale.window)
        (unified,) = run_two_sizes(
            trace, scheme, [TLBConfig(16)], cache=cache
        )
        unified_cpi[name] = unified.cpi_tlb
        split = run_split_two_sizes(
            trace, scheme, TLBConfig(12), TLBConfig(4), cache=cache
        )
        instructions = len(trace) / trace.refs_per_instruction
        split_cpi[name] = split.misses * 25.0 / instructions
        utilisation[name] = split.large_occupancy / 4.0
    return SplitAblation(unified_cpi, split_cpi, utilisation, scale)


def _hand_twolevel(scale, l1=4, l2=32, l2_hit_cycles=4.0):
    from repro.experiments.ablations import (
        ABLATION_WORKLOADS, TwoLevelAblation,
    )
    from repro.sim.config import TLBConfig, TwoLevelConfig, TwoSizeScheme
    from repro.sim.driver import run_two_level, run_two_sizes

    cache = scale.sim_cache()
    config = TwoLevelConfig(
        level1=TLBConfig(l1), level2=TLBConfig(l2),
        l2_hit_cycles=l2_hit_cycles,
    )
    flat_cpi, hierarchy_cpi, l2_rate = {}, {}, {}
    for name in ABLATION_WORKLOADS:
        trace = scale.trace(name)
        scheme = TwoSizeScheme(window=scale.window)
        (flat,) = run_two_sizes(trace, scheme, [TLBConfig(16)], cache=cache)
        flat_cpi[name] = flat.cpi_tlb
        hierarchy = run_two_level(trace, scheme, config, cache=cache)
        hierarchy_cpi[name] = hierarchy.cpi_tlb
        l1_misses = hierarchy.l2_hits + hierarchy.misses
        l2_rate[name] = hierarchy.l2_hits / l1_misses if l1_misses else 0.0
    return TwoLevelAblation(flat_cpi, hierarchy_cpi, l2_rate, l1, l2, scale)


class TestMigrationEquivalence:
    """Declaration output == hand-loop output, byte for byte."""

    def test_threshold(self):
        from repro.experiments.ablations import run_threshold_ablation

        assert (
            run_threshold_ablation(SCALE).render()
            == _hand_threshold(SCALE).render()
        )

    def test_penalty(self):
        from repro.experiments.ablations import run_penalty_ablation

        assert (
            run_penalty_ablation(SCALE).render()
            == _hand_penalty(SCALE).render()
        )

    def test_probe(self):
        from repro.experiments.ablations import run_probe_ablation

        assert (
            run_probe_ablation(SCALE).render() == _hand_probe(SCALE).render()
        )

    def test_replacement(self):
        from repro.experiments.ablations import run_replacement_ablation

        # plru's scalar-walk fallback dominates runtime; two policies
        # are enough to prove the mapping.
        policies = ("lru", "fifo")
        assert (
            run_replacement_ablation(SCALE, policies).render()
            == _hand_replacement(SCALE, policies).render()
        )

    def test_split(self):
        from repro.experiments.ablations import run_split_ablation

        assert (
            run_split_ablation(SCALE).render() == _hand_split(SCALE).render()
        )

    def test_twolevel(self):
        from repro.experiments.ablations import run_twolevel_ablation

        assert (
            run_twolevel_ablation(SCALE).render()
            == _hand_twolevel(SCALE).render()
        )


class TestCLI:
    def _tiny_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_LENGTH", "30000")
        monkeypatch.setenv("REPRO_WINDOW", "5000")

    def test_list_names(self, capsys):
        from repro.studies.cli import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in study_names():
            assert name in out

    def test_unknown_study_exits_2(self, capsys):
        from repro.studies.cli import main

        assert main(["banana"]) == 2
        assert "unknown study" in capsys.readouterr().err

    def test_no_study_exits_2(self, capsys):
        from repro.studies.cli import main

        assert main([]) == 2

    def test_registered_study_with_json_artifact(
        self, monkeypatch, tmp_path, capsys
    ):
        from repro.studies.cli import main

        self._tiny_env(monkeypatch)
        artifact = tmp_path / "report.json"
        assert main(["probe", "--json", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "sequential exact-index probing" in out
        document = json.loads(artifact.read_text())
        assert document["study"] == "probe"
        assert document["counters"]["failed"] == 0

    def test_declaration_file_run(self, monkeypatch, tmp_path, capsys):
        from repro.studies.cli import main

        self._tiny_env(monkeypatch)
        declaration = tmp_path / "tiny.json"
        declaration.write_text(
            json.dumps(
                {
                    "name": "tiny", "kind": "single", "workloads": ["li"],
                    "metrics": ["cpi_tlb"],
                    "factors": [{"name": "entries", "levels": [8, 16]}],
                }
            )
        )
        assert main([str(declaration)]) == 0
        assert "tiny" in capsys.readouterr().out

    def test_expect_cached_fails_without_cache(self, monkeypatch, capsys):
        from repro.studies.cli import main

        self._tiny_env(monkeypatch)
        # Hermetic env disables the result cache, so units simulate.
        assert main(["probe", "--expect-cached"]) == 3
        assert "expected a fully cached run" in capsys.readouterr().err

    def test_second_run_is_fully_cached(self, monkeypatch, tmp_path, capsys):
        from repro.studies.cli import main

        self._tiny_env(monkeypatch)
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["probe"]) == 0
        assert main(["probe", "--expect-cached"]) == 0
        assert "0 simulated" in capsys.readouterr().out

    def test_journal_resume_passthrough(self, monkeypatch, tmp_path, capsys):
        from repro.studies.cli import main

        self._tiny_env(monkeypatch)
        journal = tmp_path / "journal.jsonl"
        assert main(["probe", "--journal", str(journal)]) == 0
        assert main(
            ["probe", "--journal", str(journal), "--resume",
             "--expect-cached"]
        ) == 0
        assert "3 resumed" in capsys.readouterr().out
