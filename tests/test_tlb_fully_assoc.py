"""Tests for the fully associative two-page-size TLB."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.stacksim import lru_miss_curve
from repro.tlb import (
    FIFOReplacement,
    FullyAssociativeTLB,
    RandomReplacement,
    make_replacement_policy,
)


class TestBasicBehaviour:
    def test_miss_then_hit(self):
        tlb = FullyAssociativeTLB(4)
        assert not tlb.access_single(10)
        assert tlb.access_single(10)
        assert tlb.stats.accesses == 2
        assert tlb.stats.hits == 1
        assert tlb.stats.misses == 1

    def test_lru_eviction_order(self):
        tlb = FullyAssociativeTLB(2)
        tlb.access_single(1)
        tlb.access_single(2)
        tlb.access_single(1)  # 1 becomes most recent
        tlb.access_single(3)  # evicts 2
        assert tlb.access_single(1)
        assert not tlb.access_single(2)
        assert tlb.stats.replacements >= 1

    def test_capacity_bound(self):
        tlb = FullyAssociativeTLB(8)
        for page in range(20):
            tlb.access_single(page)
        assert tlb.occupancy() == 8

    def test_invalid_entry_count(self):
        with pytest.raises(ConfigurationError):
            FullyAssociativeTLB(0)

    def test_flush_preserves_stats(self):
        tlb = FullyAssociativeTLB(4)
        tlb.access_single(1)
        tlb.flush()
        assert tlb.occupancy() == 0
        assert tlb.stats.misses == 1
        assert not tlb.access_single(1)

    def test_reset_clears_stats(self):
        tlb = FullyAssociativeTLB(4)
        tlb.access_single(1)
        tlb.reset()
        assert tlb.stats.accesses == 0


class TestTwoPageSizes:
    def test_page_size_is_part_of_the_tag(self):
        # A small-page entry covers one block; a large-page entry covers
        # the whole chunk.  The page-size bit in the tag (Section 2.1)
        # keeps block 40's entry from matching block 41, while a large
        # entry for their common chunk 5 matches both.
        tlb = FullyAssociativeTLB(4)
        assert not tlb.access(40, 5, large=False)
        assert not tlb.access(41, 5, large=False)
        tlb.invalidate_small_pages_of_chunk(5, 8)
        assert not tlb.access(40, 5, large=True)
        assert tlb.access(41, 5, large=True)

    def test_entry_size_not_lookup_size_decides_the_match(self):
        # Hit logic compares every entry using the entry's own stored
        # size (Section 2.1): a resident small-page entry satisfies a
        # reference even if the policy now assigns the chunk a large
        # page — which is why promotion must shoot down stale entries.
        tlb = FullyAssociativeTLB(4)
        tlb.access(40, 5, large=False)
        assert tlb.access(40, 5, large=True)  # stale small entry matches
        tlb.invalidate_small_pages_of_chunk(5, 8)
        assert not tlb.access(40, 5, large=True)  # now it is gone

    def test_large_entry_covers_whole_chunk(self):
        tlb = FullyAssociativeTLB(4)
        # Any reference assigned to large-page chunk 3 uses tag (3, large),
        # whatever its block number.
        assert not tlb.access(24, 3, large=True)
        assert tlb.access(25, 3, large=True)
        assert tlb.access(31, 3, large=True)

    def test_large_hit_accounting(self):
        tlb = FullyAssociativeTLB(4)
        tlb.access(8, 1, large=True)
        tlb.access(9, 1, large=True)
        assert tlb.stats.large_misses == 1
        assert tlb.stats.large_hits == 1

    def test_promotion_invalidates_small_pages(self):
        tlb = FullyAssociativeTLB(8)
        for block in range(8, 12):  # blocks of chunk 1
            tlb.access(block, 1, large=False)
        tlb.access(100, 12, large=False)  # unrelated entry
        removed = tlb.invalidate_small_pages_of_chunk(1, 8)
        assert removed == 4
        assert tlb.stats.invalidations == 4
        assert tlb.access(100, 12, large=False)  # unrelated entry survives
        assert not tlb.access(8, 1, large=True)  # chunk refills as large

    def test_demotion_invalidates_large_page(self):
        tlb = FullyAssociativeTLB(4)
        tlb.access(8, 1, large=True)
        removed = tlb.invalidate_large_page(1)
        assert removed == 1
        assert not tlb.access(8, 1, large=False)


class TestAgainstStackSimulation:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=40), max_size=400),
        st.sampled_from([1, 2, 4, 8, 16]),
    )
    def test_single_size_matches_mattson(self, pages, capacity):
        tlb = FullyAssociativeTLB(capacity)
        misses = sum(0 if tlb.access_single(page) else 1 for page in pages)
        curve = lru_miss_curve(pages, max_capacity=16)
        assert misses == curve.misses(capacity)

    def test_long_random_stream(self):
        rng = np.random.default_rng(17)
        pages = rng.integers(0, 60, size=5000).tolist()
        tlb = FullyAssociativeTLB(16)
        misses = sum(0 if tlb.access_single(page) else 1 for page in pages)
        assert misses == lru_miss_curve(pages, max_capacity=16).misses(16)


class TestReplacementPolicies:
    def test_fifo_does_not_promote_on_hit(self):
        tlb = FullyAssociativeTLB(2, replacement=FIFOReplacement())
        tlb.access_single(1)
        tlb.access_single(2)
        tlb.access_single(1)  # hit, but 1 stays oldest under FIFO
        tlb.access_single(3)  # evicts 1
        assert not tlb.access_single(1)

    def test_random_is_deterministic_under_seed(self):
        def run(seed):
            tlb = FullyAssociativeTLB(4, replacement=RandomReplacement(seed))
            rng = np.random.default_rng(5)
            pages = rng.integers(0, 12, size=300)
            return [tlb.access_single(int(page)) for page in pages]

        assert run(1) == run(1)

    def test_factory(self):
        assert make_replacement_policy("lru").name == "lru"
        assert make_replacement_policy("fifo").name == "fifo"
        assert make_replacement_policy("random", seed=3).name == "random"
        assert make_replacement_policy("plru").name == "plru"
        with pytest.raises(ConfigurationError):
            make_replacement_policy("belady")
