"""Tests for the set-associative TLB and its three indexing schemes.

The scenarios mirror Section 2.2's worked examples on the 16-bit address
space of Figure 2.1: 4KB small pages, 32KB large pages, two-entry
direct-mapped TLBs indexed three different ways.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.stacksim import per_set_miss_curve
from repro.tlb import (
    FullyAssociativeTLB,
    IndexingScheme,
    ProbeStrategy,
    SetAssociativeTLB,
)


def direct_mapped(sets, scheme, **kwargs):
    return SetAssociativeTLB(sets, 1, scheme, **kwargs)


class TestGeometry:
    def test_sets_and_ways(self):
        tlb = SetAssociativeTLB(16, 2)
        assert tlb.sets == 8
        assert tlb.associativity == 2

    def test_associativity_must_divide_entries(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeTLB(16, 3)

    def test_repr_mentions_geometry(self):
        text = repr(SetAssociativeTLB(16, 2))
        assert "entries=16" in text and "assoc=2" in text


class TestSmallIndexScheme:
    """Indexing by the small page number: broken for large pages."""

    def test_single_size_behaviour_is_conventional(self):
        # With only small pages this is the ordinary TLB indexed by the
        # low page-number bits.
        tlb = direct_mapped(2, IndexingScheme.SMALL_INDEX)
        assert not tlb.access_single(0)  # set 0
        assert not tlb.access_single(1)  # set 1
        assert tlb.access_single(0)
        assert tlb.access_single(1)

    def test_large_page_scatters_across_sets(self):
        # Figure 2.1(a): one large page; accesses differing in bit<12>
        # index different sets, so the page occupies *both* entries.
        tlb = direct_mapped(2, IndexingScheme.SMALL_INDEX)
        # chunk 0, block 0 -> set 0; chunk 0, block 1 -> set 1.
        assert not tlb.access(0, 0, large=True)
        assert not tlb.access(1, 0, large=True)  # same large page misses again
        resident = list(tlb.resident())
        assert resident == [(0, True), (0, True)]  # duplicated entry

    def test_duplicate_large_entries_hit_after_fill(self):
        tlb = direct_mapped(2, IndexingScheme.SMALL_INDEX)
        tlb.access(0, 0, large=True)
        tlb.access(1, 0, large=True)
        assert tlb.access(0, 0, large=True)
        assert tlb.access(1, 0, large=True)

    def test_demotion_removes_all_duplicates(self):
        tlb = direct_mapped(4, IndexingScheme.SMALL_INDEX)
        for block in range(4):
            tlb.access(block, 0, large=True)
        assert tlb.invalidate_large_page(0) == 4


class TestLargeIndexScheme:
    """Indexing by the large page number: small pages of a chunk collide."""

    def test_small_pages_of_one_chunk_share_a_set(self):
        # Figure 2.1(b): blocks 0..7 (all in chunk 0) all index set 0 of a
        # two-entry direct-mapped TLB, evicting one another.
        tlb = direct_mapped(2, IndexingScheme.LARGE_INDEX)
        for block in range(8):
            assert not tlb.access(block, 0, large=False)
        # Even an immediate re-access of an earlier block misses: the set
        # holds only the last block (7), which block 0 then evicts.
        assert not tlb.access(0, 0, large=False)
        assert not tlb.access(7, 0, large=False)
        # Set 1 was never touched: a block of chunk 1 still cold-misses
        # but does not disturb set 0's occupant.
        assert not tlb.access(8, 1, large=False)
        assert tlb.access(7, 0, large=False)

    def test_associativity_mitigates_chunk_collisions(self):
        # Section 2.2(c): with eight ways, all eight blocks of a chunk
        # can reside in their common set simultaneously.
        tlb = SetAssociativeTLB(8, 8, IndexingScheme.LARGE_INDEX)
        for block in range(8):
            tlb.access(block, 0, large=False)
        for block in range(8):
            assert tlb.access(block, 0, large=False)

    def test_large_pages_behave_like_a_plain_large_page_tlb(self):
        tlb = direct_mapped(2, IndexingScheme.LARGE_INDEX)
        assert not tlb.access(0, 0, large=True)
        assert not tlb.access(8, 1, large=True)
        assert tlb.access(5, 0, large=True)
        assert tlb.access(13, 1, large=True)

    def test_sequential_scan_touches_one_set(self):
        # Section 2.2(b): a sequential scan of small pages overwrites
        # only the chunk's set, leaving the rest of the TLB intact.
        tlb = SetAssociativeTLB(4, 1, IndexingScheme.LARGE_INDEX)
        tlb.access(100 * 8, 100, large=True)  # chunk 100 -> set 0
        tlb.access(101 * 8, 101, large=True)  # chunk 101 -> set 1
        # Scan the eight blocks of chunk 3 -> all land in set 3.
        for block in range(24, 32):
            tlb.access(block, 3, large=False)
        assert tlb.access(100 * 8, 100, large=True)
        assert tlb.access(101 * 8, 101, large=True)


class TestExactIndexScheme:
    """Indexing by the exact page number: both candidate sets probed."""

    def test_small_and_large_use_their_own_bits(self):
        tlb = direct_mapped(2, IndexingScheme.EXACT_INDEX)
        # Small block 2 -> set 0; large chunk 1 -> set 1: no conflict.
        assert not tlb.access(2, 0, large=False)
        assert not tlb.access(9, 1, large=True)
        assert tlb.access(2, 0, large=False)
        assert tlb.access(9, 1, large=True)

    def test_large_entry_found_from_any_block(self):
        tlb = direct_mapped(4, IndexingScheme.EXACT_INDEX)
        tlb.access(8, 1, large=True)
        for block in range(8, 16):
            assert tlb.access(block, 1, large=True)

    def test_parallel_probe_counts_no_reprobes(self):
        tlb = direct_mapped(
            4, IndexingScheme.EXACT_INDEX, probe_strategy=ProbeStrategy.PARALLEL
        )
        tlb.access(0, 0, large=True)
        tlb.access(1, 0, large=True)
        assert tlb.stats.reprobes == 0

    def test_sequential_probe_counts_reprobes(self):
        tlb = direct_mapped(
            4, IndexingScheme.EXACT_INDEX, probe_strategy=ProbeStrategy.SEQUENTIAL
        )
        tlb.access(0, 0, large=True)  # miss: probes small then large -> 1
        tlb.access(1, 0, large=True)  # large hit on second probe -> 1
        tlb.access(64, 8, large=False)  # small miss: reprobe before fill -> 1
        tlb.access(64, 8, large=False)  # small hit on first probe -> 0
        assert tlb.stats.reprobes == 3

    def test_mixed_sizes_coexist_in_one_set(self):
        # Block 1 (small) and chunk 1 (large) both index set 1 of a
        # two-set TLB; the size bit in the tag keeps them distinct.
        tlb = SetAssociativeTLB(4, 2, IndexingScheme.EXACT_INDEX)
        assert not tlb.access(1, 0, large=False)
        assert not tlb.access(9, 1, large=True)
        assert tlb.access(1, 0, large=False)
        assert tlb.access(9, 1, large=True)


class TestSingleSizeEquivalence:
    """With one page size, SMALL_INDEX equals a conventional TLB."""

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=63), max_size=300),
        st.sampled_from([(4, 1), (8, 2), (16, 2), (16, 4)]),
    )
    def test_matches_per_set_stack_simulation(self, pages, geometry):
        entries, ways = geometry
        sets = entries // ways
        tlb = SetAssociativeTLB(entries, ways, IndexingScheme.SMALL_INDEX)
        misses = sum(0 if tlb.access_single(page) else 1 for page in pages)
        indices = [page & (sets - 1) for page in pages]
        curve = per_set_miss_curve(indices, pages, max_associativity=ways)
        assert misses == curve.misses(ways)

    def test_one_set_equals_fully_associative(self):
        rng = np.random.default_rng(9)
        pages = rng.integers(0, 30, size=2000).tolist()
        sa = SetAssociativeTLB(8, 8, IndexingScheme.SMALL_INDEX)
        fa = FullyAssociativeTLB(8)
        sa_misses = sum(0 if sa.access_single(page) else 1 for page in pages)
        fa_misses = sum(0 if fa.access_single(page) else 1 for page in pages)
        assert sa_misses == fa_misses

    def test_all_large_degenerates_to_large_page_tlb(self):
        # Section 2.2: "If only 32KB pages are used, [large index]
        # degenerates to a TLB supporting 32KB pages only."
        rng = np.random.default_rng(13)
        chunks = rng.integers(0, 20, size=1500).tolist()
        two_size = SetAssociativeTLB(8, 2, IndexingScheme.LARGE_INDEX)
        misses = sum(
            0 if two_size.access(chunk * 8, chunk, large=True) else 1
            for chunk in chunks
        )
        plain = SetAssociativeTLB(8, 2, IndexingScheme.SMALL_INDEX)
        plain_misses = sum(
            0 if plain.access_single(chunk) else 1 for chunk in chunks
        )
        assert misses == plain_misses
