"""Tests for the split per-page-size TLB (Section 2.2, option c)."""

import numpy as np

from repro.tlb import (
    FullyAssociativeTLB,
    IndexingScheme,
    SetAssociativeTLB,
    SplitTLB,
)


def make_split(small_entries=8, large_entries=4):
    return SplitTLB(
        FullyAssociativeTLB(small_entries), FullyAssociativeTLB(large_entries)
    )


class TestRouting:
    def test_small_references_go_to_small_tlb(self):
        split = make_split()
        split.access(10, 1, large=False)
        assert split.small_tlb.occupancy() == 1
        assert split.large_tlb.occupancy() == 0

    def test_large_references_go_to_large_tlb(self):
        split = make_split()
        split.access(10, 1, large=True)
        assert split.large_tlb.occupancy() == 1
        assert split.small_tlb.occupancy() == 0

    def test_sizes_never_conflict(self):
        split = make_split(small_entries=1, large_entries=1)
        split.access(5, 0, large=False)
        split.access(99, 12, large=True)
        assert split.access(5, 0, large=False)
        assert split.access(96, 12, large=True)

    def test_aggregate_statistics(self):
        split = make_split()
        split.access(1, 0, large=False)
        split.access(1, 0, large=False)
        split.access(8, 1, large=True)
        assert split.stats.accesses == 3
        assert split.stats.hits == 1
        assert split.stats.misses == 2
        assert split.stats.large_misses == 1

    def test_unused_large_tlb_is_wasted_hardware(self):
        # The paper's criticism: with no large pages allocated, the large
        # component sits idle while the small one takes all the pressure.
        split = make_split(small_entries=2, large_entries=16)
        rng = np.random.default_rng(3)
        for page in rng.integers(0, 50, size=500):
            split.access(int(page), int(page) // 8, large=False)
        assert split.large_tlb.occupancy() == 0
        assert split.stats.miss_ratio > 0.5


class TestInvalidation:
    def test_promotion_shootdown(self):
        split = make_split()
        for block in range(8, 12):
            split.access(block, 1, large=False)
        removed = split.invalidate_small_pages_of_chunk(1, 8)
        assert removed == 4
        assert split.small_tlb.occupancy() == 0
        assert split.stats.invalidations == 4

    def test_demotion_shootdown(self):
        split = make_split()
        split.access(8, 1, large=True)
        split.access(16, 2, large=True)
        removed = split.invalidate_large_page(1)
        assert removed == 1
        assert split.large_tlb.occupancy() == 1
        assert not split.access(8, 1, large=False)

    def test_flush_and_reset(self):
        split = make_split()
        split.access(1, 0, large=False)
        split.access(8, 1, large=True)
        split.flush()
        assert split.occupancy() == 0
        assert split.stats.accesses == 2
        split.reset()
        assert split.stats.accesses == 0


class TestComposition:
    def test_set_associative_components(self):
        split = SplitTLB(
            SetAssociativeTLB(8, 2, IndexingScheme.SMALL_INDEX),
            FullyAssociativeTLB(4),
        )
        split.access(12, 1, large=False)
        assert split.access(12, 1, large=False)
        split.access(8, 1, large=True)
        assert split.access(9, 1, large=True)

    def test_resident_reports_sizes(self):
        split = make_split()
        split.access(3, 0, large=False)
        split.access(8, 1, large=True)
        resident = set(split.resident())
        assert resident == {(3, False), (1, True)}
