"""Tests for the trace substrate: records, IO round-trips, stats, mixing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceError, TraceFormatError, TraceIntegrityError
from repro.trace import (
    KIND_IFETCH,
    KIND_LOAD,
    KIND_STORE,
    Reference,
    Trace,
    compute_statistics,
    page_reference_histogram,
    read_text_trace,
    read_trace,
    round_robin_mix,
    write_text_trace,
    write_trace,
)
from repro.types import PAGE_4KB


def small_trace(name="t", rpi=1.25):
    return Trace(
        np.array([0x1000, 0x2000, 0x1004, 0x3000], dtype=np.uint32),
        np.array([KIND_IFETCH, KIND_LOAD, KIND_IFETCH, KIND_STORE], dtype=np.uint8),
        name=name,
        refs_per_instruction=rpi,
    )


class TestReference:
    def test_kind_names(self):
        assert Reference(0, KIND_IFETCH).kind_name == "ifetch"
        assert Reference(0, KIND_LOAD).kind_name == "load"
        assert Reference(0, KIND_STORE).kind_name == "store"

    def test_rejects_bad_kind(self):
        with pytest.raises(TraceError):
            Reference(0, 7)

    def test_rejects_out_of_range_address(self):
        with pytest.raises(TraceError):
            Reference(1 << 32)
        with pytest.raises(TraceError):
            Reference(-1)


class TestTrace:
    def test_length_and_iteration(self):
        trace = small_trace()
        assert len(trace) == 4
        refs = list(trace)
        assert refs[0] == Reference(0x1000, KIND_IFETCH)
        assert refs[3] == Reference(0x3000, KIND_STORE)

    def test_default_kinds_are_loads(self):
        trace = Trace([1, 2, 3])
        assert all(ref.kind == KIND_LOAD for ref in trace)

    def test_slicing_preserves_metadata(self):
        trace = small_trace(name="abc", rpi=2.0)
        head = trace[:2]
        assert isinstance(head, Trace)
        assert len(head) == 2
        assert head.name == "abc"
        assert head.refs_per_instruction == 2.0

    def test_arrays_are_immutable(self):
        trace = small_trace()
        with pytest.raises(ValueError):
            trace.addresses[0] = 5

    def test_mismatched_kind_length_rejected(self):
        with pytest.raises(TraceError):
            Trace([1, 2, 3], [0, 1])

    def test_invalid_kind_codes_rejected(self):
        with pytest.raises(TraceError):
            Trace([1, 2], [0, 9])

    def test_nonpositive_rpi_rejected(self):
        with pytest.raises(TraceError):
            Trace([1], refs_per_instruction=0)

    def test_instruction_count(self):
        trace = Trace([1, 2, 3, 4], refs_per_instruction=2.0)
        assert trace.instruction_count == 2.0

    def test_from_references_round_trip(self):
        refs = [Reference(0x10, KIND_LOAD), Reference(0x20, KIND_STORE)]
        trace = Trace.from_references(refs, name="rt")
        assert list(trace) == refs
        assert trace.name == "rt"

    def test_concat(self):
        left = Trace([1, 2], refs_per_instruction=1.0, name="a")
        right = Trace([3, 4, 5, 6], refs_per_instruction=2.0, name="b")
        joined = left.concat(right)
        assert len(joined) == 6
        assert joined.name == "a+b"
        # 2 instructions from left, 2 from right -> 6 refs / 4 instructions.
        assert joined.refs_per_instruction == pytest.approx(1.5)

    def test_equality(self):
        assert small_trace() == small_trace()
        assert small_trace(name="x") != small_trace(name="y")


class TestBinaryIO:
    def test_round_trip(self, tmp_path):
        trace = small_trace(name="round-trip", rpi=1.4)
        path = tmp_path / "trace.rpt"
        write_trace(path, trace)
        assert read_trace(path) == trace

    def test_empty_trace_round_trip(self, tmp_path):
        trace = Trace([], name="empty")
        path = tmp_path / "empty.rpt"
        write_trace(path, trace)
        loaded = read_trace(path)
        assert len(loaded) == 0
        assert loaded.name == "empty"

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.rpt"
        path.write_bytes(b"XXXX" + b"\0" * 32)
        with pytest.raises(TraceFormatError):
            read_trace(path)

    def test_truncated_file_rejected(self, tmp_path):
        # Truncation trips the RPT2 checksum before structural parsing.
        trace = small_trace()
        path = tmp_path / "trunc.rpt"
        write_trace(path, trace)
        raw = path.read_bytes()
        path.write_bytes(raw[:-3])
        with pytest.raises(TraceError):
            read_trace(path)

    def test_trailing_bytes_rejected(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "trail.rpt"
        write_trace(path, trace)
        path.write_bytes(path.read_bytes() + b"!")
        with pytest.raises(TraceError):
            read_trace(path)

    def test_writes_rpt2_magic(self, tmp_path):
        path = tmp_path / "v2.rpt"
        write_trace(path, small_trace())
        assert path.read_bytes()[:4] == b"RPT2"

    def test_payload_corruption_raises_integrity_error(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "corrupt.rpt"
        write_trace(path, trace)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF  # last kind byte
        path.write_bytes(bytes(raw))
        with pytest.raises(TraceIntegrityError):
            read_trace(path)

    def test_legacy_rpt1_still_readable(self, tmp_path):
        from repro.trace.trace_io import _encode_body

        trace = small_trace(name="legacy", rpi=1.1)
        path = tmp_path / "legacy.rpt"
        path.write_bytes(b"RPT1" + _encode_body(trace))
        assert read_trace(path) == trace

    def test_no_tmp_file_left_behind(self, tmp_path):
        path = tmp_path / "atomic.rpt"
        write_trace(path, small_trace())
        assert [p.name for p in tmp_path.iterdir()] == ["atomic.rpt"]

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=2**32 - 1), max_size=50),
        st.floats(min_value=0.5, max_value=4.0),
    )
    def test_round_trip_property(self, tmp_path_factory, addresses, rpi):
        trace = Trace(addresses, name="prop", refs_per_instruction=rpi)
        path = tmp_path_factory.mktemp("io") / "t.rpt"
        write_trace(path, trace)
        assert read_trace(path) == trace


class TestTextIO:
    def test_round_trip(self, tmp_path):
        trace = small_trace(name="text")
        path = tmp_path / "trace.din"
        write_text_trace(path, trace)
        loaded = read_text_trace(path, name="text", refs_per_instruction=1.25)
        assert loaded == trace

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "annotated.din"
        path.write_text("# header\n\n0 1000\n1 2000\n")
        trace = read_text_trace(path)
        assert len(trace) == 2
        assert trace[0].address == 0x1000
        assert trace[0].kind == KIND_LOAD
        assert trace[1].kind == KIND_STORE

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "mytrace.din"
        path.write_text("2 10\n")
        assert read_text_trace(path).name == "mytrace"

    def test_bad_lines_rejected(self, tmp_path):
        path = tmp_path / "bad.din"
        for content in ("0\n", "9 1000\n", "0 zzzz\n"):
            path.write_text(content)
            with pytest.raises(TraceFormatError):
                read_text_trace(path)


class TestStatistics:
    def test_basic_counts(self):
        trace = small_trace()
        stats = compute_statistics(trace, PAGE_4KB)
        assert stats.length == 4
        assert stats.distinct_pages == 3
        assert stats.footprint_bytes == 3 * PAGE_4KB
        assert stats.ifetch_count == 2
        assert stats.load_count == 1
        assert stats.store_count == 1
        assert stats.data_fraction == pytest.approx(0.5)

    def test_footprint_string(self):
        stats = compute_statistics(small_trace())
        assert stats.footprint == "12KB"

    def test_empty_trace(self):
        stats = compute_statistics(Trace([]))
        assert stats.length == 0
        assert stats.distinct_pages == 0
        assert stats.data_fraction == 0.0

    def test_histogram(self):
        trace = Trace([0x1000, 0x1abc, 0x2000])
        histogram = page_reference_histogram(trace, PAGE_4KB)
        assert histogram == {1: 2, 2: 1}


class TestMix:
    def test_round_robin_schedules_quantum(self):
        left = Trace(np.arange(6, dtype=np.uint32) * 4096, name="L")
        right = Trace(np.arange(4, dtype=np.uint32) * 4096, name="R")
        mixed = round_robin_mix([left, right], quantum=2, context_stride=1 << 20)
        assert len(mixed) == 10
        # First quantum from L, then R (offset by the stride), alternating.
        assert mixed.addresses[0] == 0
        assert mixed.addresses[2] == 1 << 20
        assert mixed.name == "mix(L,R)"

    def test_exhausted_trace_stops_being_scheduled(self):
        left = Trace(np.zeros(5, dtype=np.uint32), name="L")
        right = Trace(np.zeros(1, dtype=np.uint32), name="R")
        mixed = round_robin_mix([left, right], quantum=2, context_stride=1 << 20)
        assert len(mixed) == 6

    def test_address_collision_rejected(self):
        trace = Trace([1 << 21], name="big")
        with pytest.raises(TraceError):
            round_robin_mix([trace, trace], quantum=1, context_stride=1 << 20)

    def test_zero_traces_rejected(self):
        with pytest.raises(TraceError):
            round_robin_mix([])

    def test_bad_quantum_rejected(self):
        with pytest.raises(TraceError):
            round_robin_mix([Trace([0])], quantum=0)
