"""Tests for the repro-trace command-line tool."""

import pytest

from repro.trace import read_trace
from repro.trace.cli import main


class TestGenerate:
    def test_generate_binary(self, tmp_path, capsys):
        path = tmp_path / "li.rpt"
        code = main(["generate", "li", str(path), "--length", "5000"])
        assert code == 0
        trace = read_trace(path)
        assert len(trace) == 5000
        assert trace.name == "li"
        assert "wrote 5,000 references" in capsys.readouterr().out

    def test_generate_text(self, tmp_path):
        path = tmp_path / "li.din"
        assert main(["generate", "li", str(path), "--length", "100"]) == 0
        assert path.read_text().count("\n") == 100

    def test_unknown_workload_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "gcc", str(tmp_path / "x.rpt")])


class TestInfo:
    def test_info_reports_statistics(self, tmp_path, capsys):
        path = tmp_path / "t.rpt"
        main(["generate", "espresso", str(path), "--length", "20000"])
        capsys.readouterr()
        assert main(["info", str(path), "--window", "5000"]) == 0
        out = capsys.readouterr().out
        assert "references:      20,000" in out
        assert "footprint:" in out
        assert "working set:" in out

    def test_info_missing_file(self, capsys):
        assert main(["info", "/nonexistent/trace.rpt"]) == 2
        assert "repro-trace:" in capsys.readouterr().err


class TestFormatSniffing:
    def test_text_named_rpt_gets_clear_error(self, tmp_path, capsys):
        path = tmp_path / "foo.rpt"
        path.write_text("0 1000\n1 2000\n")
        assert main(["info", str(path)]) == 2
        err = capsys.readouterr().err
        assert "repro-trace:" in err
        assert "magic" in err

    def test_binary_named_din_reads_as_binary(self, tmp_path, capsys):
        mislabeled = tmp_path / "actually-binary.din"
        main(["generate", "li", str(mislabeled), "--length", "100"])
        # The generate step trusts the suffix and wrote text; overwrite
        # with real binary bytes to prove _load sniffs rather than trusts.
        binary = tmp_path / "real.rpt"
        main(["generate", "li", str(binary), "--length", "100"])
        mislabeled.write_bytes(binary.read_bytes())
        capsys.readouterr()
        assert main(["info", str(mislabeled)]) == 0
        assert "references:      100" in capsys.readouterr().out


class TestConvert:
    def test_binary_text_round_trip(self, tmp_path, capsys):
        binary = tmp_path / "t.rpt"
        text = tmp_path / "t.din"
        back = tmp_path / "back.rpt"
        main(["generate", "li", str(binary), "--length", "500"])
        assert main(["convert", str(binary), str(text)]) == 0
        assert main(["convert", str(text), str(back)]) == 0
        original = read_trace(binary)
        converted = read_trace(back)
        assert (original.addresses == converted.addresses).all()
        assert (original.kinds == converted.kinds).all()


class TestMix:
    def test_mix_two_traces(self, tmp_path, capsys):
        first = tmp_path / "a.rpt"
        second = tmp_path / "b.rpt"
        out = tmp_path / "mix.rpt"
        main(["generate", "espresso", str(first), "--length", "1000"])
        main(["generate", "worm", str(second), "--length", "1000"])
        capsys.readouterr()
        code = main(
            ["mix", str(first), str(second), "--output", str(out),
             "--quantum", "250"]
        )
        assert code == 0
        mixed = read_trace(out)
        assert len(mixed) == 2000
        assert mixed.name == "mix(espresso,worm)"

    def test_mix_reports_stride_overflow(self, tmp_path, capsys):
        # li's stack sits near the top of the 32-bit space, so it cannot
        # be offset by the default stride; the CLI reports rather than
        # crashes, and --stride can widen the slices (two contexts max).
        first = tmp_path / "a.rpt"
        second = tmp_path / "b.rpt"
        out = tmp_path / "mix.rpt"
        main(["generate", "li", str(first), "--length", "200"])
        main(["generate", "worm", str(second), "--length", "200"])
        capsys.readouterr()
        assert (
            main(["mix", str(first), str(second), "--output", str(out)]) == 2
        )
        assert "repro-trace:" in capsys.readouterr().err
        assert (
            main(
                ["mix", str(second), str(first), "--output", str(out),
                 "--stride", str(1 << 31)]
            )
            == 0
        )
