"""Tests for the two-level TLB hierarchy and tree-PLRU replacement."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tlb import (
    FullyAssociativeTLB,
    IndexingScheme,
    SetAssociativeTLB,
    TreePLRUReplacement,
    TwoLevelTLB,
    make_replacement_policy,
)


def make_hierarchy(l1=4, l2=32, l2_cycles=4.0):
    return TwoLevelTLB(
        FullyAssociativeTLB(l1), FullyAssociativeTLB(l2), l2_cycles
    )


class TestTwoLevelTLB:
    def test_l1_hit_after_fill(self):
        tlb = make_hierarchy()
        assert not tlb.access_single(1)
        assert tlb.access_single(1)
        assert tlb.l2_hits == 0

    def test_l2_catches_l1_evictions(self):
        tlb = make_hierarchy(l1=2, l2=32)
        for page in range(8):
            tlb.access_single(page)
        # Page 0 long evicted from the 2-entry L1 but resident in L2.
        assert tlb.access_single(0)
        assert tlb.l2_hits == 1
        assert tlb.extra_hit_cycles() == 4.0

    def test_overall_misses_require_both_levels_missing(self):
        tlb = make_hierarchy(l1=2, l2=4)
        for page in range(16):
            tlb.access_single(page)
        assert tlb.stats.misses == 16  # sequential: everything cold
        # Re-walk the last 4 pages: L1 has 2, L2 has 4.
        hits = sum(tlb.access_single(page) for page in range(12, 16))
        assert hits == 4

    def test_behaves_like_big_tlb_when_l2_large(self):
        rng = np.random.default_rng(5)
        pages = rng.integers(0, 40, size=3000).tolist()
        hierarchy = make_hierarchy(l1=4, l2=64)
        flat = FullyAssociativeTLB(64)
        h_misses = sum(0 if hierarchy.access_single(p) else 1 for p in pages)
        f_misses = sum(0 if flat.access_single(p) else 1 for p in pages)
        # Non-inclusive L1 can only help or tie; allow small divergence
        # from the extra L1 recency state.
        assert h_misses == f_misses

    def test_two_page_sizes_and_invalidation(self):
        tlb = make_hierarchy()
        tlb.access(40, 5, large=True)
        assert tlb.access(41, 5, large=True)
        removed = tlb.invalidate_large_page(5)
        assert removed >= 2  # the entry existed at both levels
        assert not tlb.access(40, 5, large=True)

    def test_flush_and_reset(self):
        tlb = make_hierarchy()
        tlb.access_single(1)
        tlb.flush()
        assert tlb.occupancy() == 0
        tlb.access_single(1)
        tlb.reset()
        assert tlb.stats.accesses == 0
        assert tlb.l2_hits == 0

    def test_resident_deduplicates_levels(self):
        tlb = make_hierarchy()
        tlb.access_single(1)
        assert list(tlb.resident()) == [(1, False)]
        assert tlb.occupancy() == 1


class TestTreePLRU:
    def test_factory(self):
        assert make_replacement_policy("plru").name == "plru"

    def test_single_entry_set_behaves(self):
        tlb = FullyAssociativeTLB(1, replacement=TreePLRUReplacement())
        assert not tlb.access_single(1)
        assert tlb.access_single(1)
        assert not tlb.access_single(2)
        assert not tlb.access_single(1)

    def test_plru_equals_lru_at_two_ways(self):
        # With two ways the PLRU tree is exact LRU.
        rng = np.random.default_rng(11)
        pages = rng.integers(0, 6, size=2000).tolist()
        plru = SetAssociativeTLB(
            8, 2, IndexingScheme.SMALL_INDEX,
            replacement=TreePLRUReplacement(),
        )
        lru = SetAssociativeTLB(8, 2, IndexingScheme.SMALL_INDEX)
        plru_misses = sum(0 if plru.access_single(p) else 1 for p in pages)
        lru_misses = sum(0 if lru.access_single(p) else 1 for p in pages)
        assert plru_misses == lru_misses

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=30), max_size=300))
    def test_plru_close_to_lru_at_higher_ways(self, pages):
        plru = FullyAssociativeTLB(8, replacement=TreePLRUReplacement())
        lru = FullyAssociativeTLB(8)
        plru_misses = sum(0 if plru.access_single(p) else 1 for p in pages)
        lru_misses = sum(0 if lru.access_single(p) else 1 for p in pages)
        # PLRU approximates LRU: never catastrophically worse, and the
        # capacity bound holds regardless.
        assert plru.occupancy() <= 8
        if pages:
            assert plru_misses <= max(2 * lru_misses, len(pages))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=30), max_size=300))
    def test_plru_repeat_access_hits(self, pages):
        tlb = FullyAssociativeTLB(8, replacement=TreePLRUReplacement())
        for page in pages:
            tlb.access_single(page)
            assert tlb.access_single(page)
