"""Tests for repro.types: page-size math and the PageSizePair invariants."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PageSizeError
from repro.types import (
    KB,
    MB,
    PAGE_4KB,
    PAGE_8KB,
    PAGE_32KB,
    PAIR_4KB_32KB,
    PageSizePair,
    format_size,
    is_power_of_two,
    log2_exact,
    validate_page_size,
)


class TestPowerOfTwo:
    def test_powers_are_recognised(self):
        for exponent in range(31):
            assert is_power_of_two(1 << exponent)

    def test_non_powers_are_rejected(self):
        for value in (0, -1, -4096, 3, 6, 4095, 4097, 12 * KB):
            assert not is_power_of_two(value)

    def test_log2_exact_round_trips(self):
        for exponent in range(1, 31):
            assert log2_exact(1 << exponent) == exponent

    def test_log2_exact_rejects_non_powers(self):
        with pytest.raises(PageSizeError):
            log2_exact(3)

    @given(st.integers(min_value=1, max_value=2**40))
    def test_is_power_of_two_matches_bit_count(self, value):
        assert is_power_of_two(value) == (bin(value).count("1") == 1)


class TestValidatePageSize:
    def test_accepts_paper_page_sizes(self):
        for size in (PAGE_4KB, PAGE_8KB, PAGE_32KB, 64 * KB, MB):
            assert validate_page_size(size) == size

    def test_rejects_non_power_of_two(self):
        with pytest.raises(PageSizeError):
            validate_page_size(3 * KB)

    def test_rejects_tiny_sizes(self):
        with pytest.raises(PageSizeError):
            validate_page_size(256)

    def test_rejects_sizes_beyond_address_space(self):
        with pytest.raises(PageSizeError):
            validate_page_size(1 << 32)


class TestPageSizePair:
    def test_paper_primary_pair(self):
        pair = PAIR_4KB_32KB
        assert pair.small == 4 * KB
        assert pair.large == 32 * KB
        assert pair.blocks_per_chunk == 8
        assert pair.small_shift == 12
        assert pair.large_shift == 15
        assert str(pair) == "4KB/32KB"

    def test_rejects_large_not_exceeding_small(self):
        with pytest.raises(PageSizeError):
            PageSizePair(PAGE_32KB, PAGE_4KB)
        with pytest.raises(PageSizeError):
            PageSizePair(PAGE_4KB, PAGE_4KB)

    def test_rejects_non_power_of_two_members(self):
        with pytest.raises(PageSizeError):
            PageSizePair(3 * KB, PAGE_32KB)
        with pytest.raises(PageSizeError):
            PageSizePair(PAGE_4KB, 24 * KB)

    def test_chunk_and_block_decomposition(self):
        pair = PAIR_4KB_32KB
        # Address in chunk 2, block 5 of that chunk (Figure 2.1 numbering).
        address = 2 * pair.large + 5 * pair.small + 123
        assert pair.chunk_of(address) == 2
        assert pair.block_of(address) == 2 * 8 + 5
        assert pair.block_within_chunk(address) == 5

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_block_chunk_consistency(self, address):
        pair = PAIR_4KB_32KB
        block = pair.block_of(address)
        assert block // pair.blocks_per_chunk == pair.chunk_of(address)
        assert block % pair.blocks_per_chunk == pair.block_within_chunk(address)

    def test_pair_is_hashable_and_frozen(self):
        pair = PageSizePair(PAGE_4KB, PAGE_32KB)
        assert pair == PAIR_4KB_32KB
        assert hash(pair) == hash(PAIR_4KB_32KB)
        with pytest.raises(AttributeError):
            pair.small = PAGE_8KB


class TestFormatSize:
    def test_kb_values(self):
        assert format_size(4 * KB) == "4KB"
        assert format_size(32 * KB) == "32KB"
        assert format_size(1.5 * KB) == "1.5KB"

    def test_mb_values(self):
        assert format_size(MB) == "1MB"
        assert format_size(2.5 * MB) == "2.5MB"

    def test_boundary_is_mb(self):
        assert format_size(MB).endswith("MB")
        assert format_size(MB - 1).endswith("KB")
