"""Tests for the walk-derived miss-penalty model."""

import pytest

from repro.errors import ConfigurationError
from repro.mem import (
    Translation,
    TwoPageSizePageTable,
    WalkCycleModel,
    measure_walk_costs,
)
from repro.types import PAGE_4KB, PAGE_32KB


class TestWalkCycleModel:
    def test_default_costs_bracket_the_paper_estimate(self):
        # Small miss 24 cycles, large miss 28: the paper's flat 25-cycle
        # two-size penalty is the blend.
        model = WalkCycleModel()
        assert model.small_page_cost() == 24.0
        assert model.large_page_cost() == 28.0
        assert model.small_page_cost() < 25.0 < model.large_page_cost()

    def test_cost_uses_walk_touches(self):
        model = WalkCycleModel(trap_cycles=10, cycles_per_touch=5)
        assert model.cost(Translation(0, PAGE_4KB, 2)) == 20.0
        assert model.cost(Translation(0, PAGE_32KB, 3)) == 25.0

    def test_blended_factor_endpoints(self):
        model = WalkCycleModel()
        assert model.blended_factor(0.0) == pytest.approx(1.0)
        assert model.blended_factor(1.0) == pytest.approx(28.0 / 24.0)

    def test_blended_factor_monotone(self):
        model = WalkCycleModel()
        factors = [model.blended_factor(f / 10) for f in range(11)]
        assert factors == sorted(factors)

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            WalkCycleModel(trap_cycles=-1)
        with pytest.raises(ConfigurationError):
            WalkCycleModel().blended_factor(1.5)


class TestMeasureWalkCosts:
    def test_small_and_large_walks_priced_differently(self):
        table = TwoPageSizePageTable()
        table.map_small(0, 0)
        table.map_large(1, PAGE_32KB)
        model = WalkCycleModel()
        small_cost = measure_walk_costs(table, [0x10], model)
        large_cost = measure_walk_costs(table, [PAGE_32KB + 0x10], model)
        assert small_cost == model.small_page_cost()
        assert large_cost == model.large_page_cost()

    def test_unmapped_address_costs_full_failed_walk(self):
        table = TwoPageSizePageTable()
        cost = measure_walk_costs(table, [0x123456], WalkCycleModel())
        assert cost == 28.0

    def test_totals_accumulate(self):
        table = TwoPageSizePageTable()
        table.map_small(0, 0)
        model = WalkCycleModel()
        total = measure_walk_costs(table, [0x0, 0x4, 0x8], model)
        assert total == 3 * model.small_page_cost()
