"""Tests for the Slutz-Traiger working-set calculation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.stacksim import (
    average_working_set_bytes,
    average_working_set_pages,
    forward_reference_gaps,
    naive_average_working_set_pages,
)
from repro.trace import Trace
from repro.types import PAGE_4KB, PAGE_32KB


def brute_force_average(pages, window):
    """Literal Denning definition: count distinct pages per window."""
    total = 0
    for position in range(len(pages)):
        start = max(0, position - window + 1)
        total += len(set(pages[start : position + 1]))
    return total / len(pages) if pages else 0.0


class TestForwardGaps:
    def test_simple_sequence(self):
        gaps = forward_reference_gaps(np.array([1, 2, 1, 2]))
        # page 1 at 0 next used at 2 (gap 2); page 2 at 1 next at 3 (gap 2);
        # final uses run to the end of the 4-reference trace.
        assert gaps.tolist() == [2, 2, 2, 1]

    def test_all_distinct(self):
        gaps = forward_reference_gaps(np.array([5, 6, 7]))
        assert gaps.tolist() == [3, 2, 1]

    def test_empty(self):
        assert forward_reference_gaps(np.array([], dtype=np.int64)).size == 0

    def test_gap_sum_bounds(self):
        # Sum of gaps equals sum over pages of (k - first_occurrence),
        # because consecutive gaps for one page telescope to the trace end.
        pages = np.array([3, 3, 4, 3, 4, 5])
        gaps = forward_reference_gaps(pages)
        first = {3: 0, 4: 2, 5: 5}
        expected = sum(len(pages) - position for position in first.values())
        assert int(gaps.sum()) == expected


class TestAverageWorkingSet:
    def test_single_page_program(self):
        pages = np.array([9] * 100)
        result = average_working_set_pages(pages, [10])
        assert result[10] == pytest.approx(1.0)

    def test_distinct_pages_window_one(self):
        # With T=1 the working set is always exactly one page.
        pages = np.array([1, 2, 3, 4, 5])
        assert average_working_set_pages(pages, [1])[1] == pytest.approx(1.0)

    def test_window_covering_whole_trace(self):
        # With T >= k, w(t) is the number of distinct pages seen so far.
        pages = np.array([1, 2, 3])
        # w = 1, 2, 3 -> average 2.
        assert average_working_set_pages(pages, [100])[100] == pytest.approx(2.0)

    def test_monotone_in_window(self):
        rng = np.random.default_rng(11)
        pages = rng.integers(0, 50, size=3000)
        curve = average_working_set_pages(pages, [1, 10, 100, 1000])
        values = [curve[1], curve[10], curve[100], curve[1000]]
        assert values == sorted(values)

    def test_matches_naive_sliding_window(self):
        rng = np.random.default_rng(5)
        pages = rng.integers(0, 30, size=800)
        for window in (1, 7, 50, 400):
            fast = average_working_set_pages(pages, [window])[window]
            slow = naive_average_working_set_pages(pages, window)
            assert fast == pytest.approx(slow)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=12), min_size=1, max_size=120),
        st.integers(min_value=1, max_value=150),
    )
    def test_matches_brute_force(self, pages, window):
        fast = average_working_set_pages(np.array(pages), [window])[window]
        assert fast == pytest.approx(brute_force_average(pages, window))

    def test_empty_trace(self):
        assert average_working_set_pages(np.array([], dtype=np.int64), [5]) == {
            5: 0.0
        }

    def test_bad_window_rejected(self):
        with pytest.raises(ConfigurationError):
            average_working_set_pages(np.array([1]), [0])
        with pytest.raises(ConfigurationError):
            naive_average_working_set_pages([1], -3)


class TestAverageWorkingSetBytes:
    def test_scales_with_page_size(self):
        # One address per 4KB page inside one 32KB chunk: at 4KB the
        # working set counts each page, at 32KB it is a single page.
        addresses = np.arange(8, dtype=np.uint32) * PAGE_4KB
        trace = Trace(np.tile(addresses, 50))
        small = average_working_set_bytes(trace, PAGE_4KB, [8])[8]
        large = average_working_set_bytes(trace, PAGE_32KB, [8])[8]
        assert large == pytest.approx(PAGE_32KB)
        assert small <= 8 * PAGE_4KB
        # Spatially dense access: the 32KB measurement equals total memory,
        # the 4KB one approaches it from below.
        assert large <= small * 8

    def test_sparse_access_inflates_large_pages(self):
        # One hot address per 32KB chunk: 4KB pages charge 4KB each,
        # 32KB pages charge 32KB each -> exactly 8x inflation.
        addresses = np.arange(16, dtype=np.uint32) * PAGE_32KB
        trace = Trace(np.tile(addresses, 100))
        small = average_working_set_bytes(trace, PAGE_4KB, [16])[16]
        large = average_working_set_bytes(trace, PAGE_32KB, [16])[16]
        assert large / small == pytest.approx(8.0)
