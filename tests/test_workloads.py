"""Tests for the twelve program models and the registry."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.stacksim import average_working_set_bytes
from repro.trace import KIND_IFETCH, compute_statistics
from repro.types import KB, MB, PAGE_4KB
from repro.workloads import (
    CATEGORY_LARGE,
    CATEGORY_SMALL,
    WORKLOAD_ORDER,
    all_workloads,
    cached_trace,
    generate_trace,
    get_workload,
    workload_names,
)


class TestRegistry:
    def test_twelve_workloads_in_paper_order(self):
        names = workload_names()
        assert len(names) == 12
        assert names[0] == "li"
        assert names[-1] == "verilog"
        assert names.index("eqntott") < names.index("worm")  # small before large

    def test_get_workload(self):
        assert get_workload("matrix300").name == "matrix300"
        with pytest.raises(WorkloadError):
            get_workload("gcc")

    def test_all_workloads_order_matches(self):
        assert [w.name for w in all_workloads()] == list(WORKLOAD_ORDER)

    def test_category_split(self):
        small = [w.name for w in all_workloads() if w.category == CATEGORY_SMALL]
        large = [w.name for w in all_workloads() if w.category == CATEGORY_LARGE]
        assert small == ["li", "espresso", "fpppp", "doduc", "x11perf", "eqntott"]
        assert large == ["worm", "nasa7", "xnews", "matrix300", "tomcatv", "verilog"]

    def test_metadata_present(self):
        for workload in all_workloads():
            assert workload.description
            assert 1.0 < workload.refs_per_instruction < 2.0
            assert workload.nominal_footprint > 0


class TestGeneration:
    def test_deterministic_under_seed(self):
        one = generate_trace("li", 5000, seed=7)
        two = generate_trace("li", 5000, seed=7)
        assert one == two

    def test_different_seeds_differ(self):
        one = generate_trace("li", 5000, seed=1)
        two = generate_trace("li", 5000, seed=2)
        assert one != two

    def test_requested_length(self):
        for length in (0, 1, 1234):
            assert len(generate_trace("espresso", length)) == length

    def test_negative_length_rejected(self):
        with pytest.raises(WorkloadError):
            generate_trace("li", -1)

    def test_trace_carries_metadata(self):
        trace = generate_trace("matrix300", 100)
        assert trace.name == "matrix300"
        assert trace.refs_per_instruction == 1.50

    def test_all_workloads_generate(self):
        for workload in all_workloads():
            trace = workload.generate(2000, seed=3)
            assert len(trace) == 2000

    def test_mixes_instruction_and_data(self):
        for name in ("li", "matrix300", "worm"):
            trace = generate_trace(name, 20_000, seed=0)
            stats = compute_statistics(trace)
            assert stats.ifetch_count > 0.2 * stats.length
            assert stats.load_count > 0
            assert stats.store_count > 0


class TestLocalityShapes:
    """Each model must exhibit the archetype its program is known for."""

    def test_matrix300_has_dense_multi_megabyte_footprint(self):
        trace = generate_trace("matrix300", 400_000, seed=0)
        stats = compute_statistics(trace)
        assert stats.footprint_bytes > 1.5 * MB

    def test_espresso_footprint_is_small(self):
        trace = generate_trace("espresso", 200_000, seed=0)
        stats = compute_statistics(trace)
        assert stats.footprint_bytes < MB

    def test_worm_hot_blocks_are_chunk_scattered(self):
        # The promotion-starved shape: warm chunks stay below 4 blocks.
        trace = generate_trace("worm", 100_000, seed=0)
        data = trace.addresses[trace.kinds != KIND_IFETCH]
        heap = data[data >= 4 * MB]
        chunks = heap // (32 * KB)
        blocks = heap // PAGE_4KB
        by_chunk = {}
        for chunk, block in zip(chunks.tolist(), blocks.tolist()):
            by_chunk.setdefault(chunk, set()).add(block)
        densities = [len(blocks_seen) for blocks_seen in by_chunk.values()]
        # Warm chunks stay far below the promote-at-4 threshold.
        assert np.mean(densities) <= 3.0
        assert max(densities) <= 3

    def test_x11perf_pixmap_chunks_are_dense(self):
        trace = generate_trace("x11perf", 200_000, seed=0)
        data = trace.addresses[trace.kinds != KIND_IFETCH]
        pixmap = data[data >= 8 * MB]
        chunks = pixmap // (32 * KB)
        blocks = pixmap // PAGE_4KB
        by_chunk = {}
        for chunk, block in zip(chunks.tolist(), blocks.tolist()):
            by_chunk.setdefault(chunk, set()).add(block)
        densities = [len(blocks_seen) for blocks_seen in by_chunk.values()]
        assert np.mean(densities) > 6.0

    def test_x11perf_writes_heavily(self):
        # With ~74% instruction fetches, the pixmap stores are a modest
        # but clearly-present share of all references.
        trace = generate_trace("x11perf", 50_000, seed=0)
        stats = compute_statistics(trace)
        assert stats.store_count > 0.05 * stats.length

    def test_working_set_ordering_within_categories(self):
        # The paper orders each category by ascending working set; check
        # the extremes rather than every neighbour (models are noisy).
        window = 50_000
        sizes = {}
        for name in ("li", "eqntott", "worm", "verilog"):
            trace = generate_trace(name, 150_000, seed=0)
            sizes[name] = average_working_set_bytes(trace, PAGE_4KB, [window])[
                window
            ]
        assert sizes["li"] < sizes["eqntott"]
        assert sizes["worm"] < sizes["verilog"]

    def test_small_category_working_sets_below_large(self):
        window = 50_000
        small = generate_trace("espresso", 150_000, seed=0)
        large = generate_trace("tomcatv", 150_000, seed=0)
        ws_small = average_working_set_bytes(small, PAGE_4KB, [window])[window]
        ws_large = average_working_set_bytes(large, PAGE_4KB, [window])[window]
        assert ws_small < ws_large


class TestTraceCache:
    def test_cache_round_trip(self, tmp_path):
        first = cached_trace("li", 3000, seed=5, cache_dir=tmp_path)
        assert (tmp_path / "li-v4-3000-5.rpt").exists()
        second = cached_trace("li", 3000, seed=5, cache_dir=tmp_path)
        assert first == second

    def test_cache_distinguishes_parameters(self, tmp_path):
        cached_trace("li", 1000, seed=1, cache_dir=tmp_path)
        cached_trace("li", 1000, seed=2, cache_dir=tmp_path)
        cached_trace("li", 2000, seed=1, cache_dir=tmp_path)
        assert len(list(tmp_path.glob("*.rpt"))) == 3
