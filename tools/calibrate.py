"""Calibration readout: per-workload WS + CPI vs paper targets."""
import sys

import numpy as np  # noqa: F401  (kept importable for interactive tweaking)

from repro.errors import ReproError
from repro.workloads import all_workloads
from repro.stacksim import average_working_set_bytes
from repro.policy.dynamic_ws import dynamic_average_working_set
from repro.sim import TLBConfig, TwoSizeScheme, run_two_sizes, sweep_single_size
from repro.types import PAGE_4KB, PAGE_8KB, PAGE_32KB, PAIR_4KB_32KB

# Paper Table 5.1 16-entry two-way "4KB" column, the CPI anchor.
TARGET = {
    "li": 0.320, "espresso": 0.095, "fpppp": 0.201, "doduc": 0.248,
    "x11perf": 0.536, "eqntott": 0.170, "worm": 0.352, "nasa7": 1.029,
    "xnews": 0.247, "matrix300": 1.624, "tomcatv": 0.461, "verilog": 0.604,
}


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    length = int(argv[0]) if len(argv) > 0 else 300_000
    window = int(argv[1]) if len(argv) > 1 else 40_000

    fa = TLBConfig(16)
    sa16 = TLBConfig(16, 2)
    print(f"{'prog':10s} {'ws4K':>7s} {'wsN32':>6s} {'wsN2':>5s} {'promo':>5s} | "
          f"{'FA 4K':>6s} {'FA 8K':>6s} {'FA32K':>6s} {'FA 2pg':>6s} | "
          f"{'2w 4K':>6s} {'tgt':>6s} {'2w 2pg':>6s}")
    for w in all_workloads():
        t = w.generate(length, seed=0)
        ws4 = average_working_set_bytes(t, PAGE_4KB, [window])[window]
        ws32 = average_working_set_bytes(t, PAGE_32KB, [window])[window]
        dyn = dynamic_average_working_set(t, PAIR_4KB_32KB, window)
        swept = sweep_single_size(t, [PAGE_4KB, PAGE_8KB, PAGE_32KB], [fa, sa16])
        scheme = TwoSizeScheme(window=window)
        two = run_two_sizes(t, scheme, [fa, sa16])
        c = lambda ps, cfg: swept[(ps, cfg.label)].cpi_tlb
        print(f"{w.name:10s} {ws4/1024:6.0f}K {ws32/ws4:6.2f} {dyn.average_bytes/ws4:5.2f} {dyn.promotions:5d} | "
              f"{c(PAGE_4KB, fa):6.3f} {c(PAGE_8KB, fa):6.3f} {c(PAGE_32KB, fa):6.3f} {two[0].cpi_tlb:6.3f} | "
              f"{c(PAGE_4KB, sa16):6.3f} {TARGET[w.name]:6.3f} {two[1].cpi_tlb:6.3f}")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except ReproError as error:
        print(f"calibrate: {error}", file=sys.stderr)
        sys.exit(2)
